package textplot

import (
	"strings"
	"testing"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

func demoState(t *testing.T) *sched.State {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 20})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 30})
	g.Msg(p1, p2, 4)
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGantt(t *testing.T) {
	st := demoState(t)
	out := Gantt(st, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 nodes + bus.
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "N0") || !strings.HasPrefix(lines[3], "bus") {
		t.Errorf("unexpected layout:\n%s", out)
	}
	// Node rows must contain busy marks ('A') and idle marks ('.').
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], ".") {
		t.Errorf("node row lacks busy/idle marks: %s", lines[1])
	}
	if !strings.Contains(lines[3], "A") {
		t.Errorf("bus row shows no message traffic: %s", lines[3])
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	st := demoState(t)
	if out := Gantt(st, 0); len(out) == 0 {
		t.Error("default width produced empty chart")
	}
}

func TestChart(t *testing.T) {
	out := Chart("title", "size", []string{"40", "80"},
		[]Series{{Name: "AH", Values: []float64{10, 20}}, {Name: "MH", Values: []float64{1, 2}}}, "%")
	for _, want := range []string{"title", "size = 40", "size = 80", "AH", "MH", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// All-zero series must not divide by zero.
	if out := Chart("z", "x", []string{"1"}, []Series{{Name: "s", Values: []float64{0}}}, ""); out == "" {
		t.Error("zero chart empty")
	}
}

func TestTable(t *testing.T) {
	out := Table("size", []string{"40"}, []Series{{Name: "AH", Values: []float64{1.234}}}, "%.1f")
	if !strings.Contains(out, "1.2") || !strings.Contains(out, "AH") {
		t.Errorf("table malformed:\n%s", out)
	}
	// Missing values render as blanks, not panics.
	out = Table("size", []string{"40", "80"}, []Series{{Name: "AH", Values: []float64{1}}}, "")
	if !strings.Contains(out, "80") {
		t.Errorf("row for missing value dropped:\n%s", out)
	}
}

func TestSlackMap(t *testing.T) {
	per := map[model.NodeID][]tm.Interval{
		0: {tm.Iv(0, 10), tm.Iv(50, 60)},
		1: nil,
	}
	out := SlackMap(per)
	if !strings.Contains(out, "N0") || !strings.Contains(out, "20") {
		t.Errorf("slack map malformed:\n%s", out)
	}
}
