// Package model defines the application and architecture model of the
// paper: process graphs with periods and deadlines, heterogeneous WCET
// tables, messages, applications, and the TTP-based target architecture
// (nodes attached to a TDMA bus).
//
// An Application is a set of process graphs; each graph has its own period
// and deadline. A System is an architecture plus the applications living on
// it, in arrival order: in the incremental design process the earlier
// applications are "existing" (frozen mapping and schedule) and the last
// one is typically the "current" application being mapped.
package model

import (
	"fmt"
	"sort"

	"incdes/internal/tm"
)

// NodeID identifies a processing node of the architecture.
type NodeID int

// ProcID identifies a process, unique across the whole system.
type ProcID int

// MsgID identifies a message, unique across the whole system.
type MsgID int

// GraphID identifies a process graph, unique across the whole system.
type GraphID int

// AppID identifies an application, unique across the whole system.
type AppID int

// Process is a non-preemptable unit of computation. Its worst-case
// execution time depends on which node it runs on (the architecture is
// heterogeneous); nodes absent from the WCET table cannot host it.
type Process struct {
	ID   ProcID             `json:"id"`
	Name string             `json:"name,omitempty"`
	WCET map[NodeID]tm.Time `json:"wcet"`
}

// AllowedNodes returns the nodes this process may be mapped to, ascending.
func (p *Process) AllowedNodes() []NodeID {
	nodes := make([]NodeID, 0, len(p.WCET))
	for n := range p.WCET {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// AvgWCET returns the mean WCET over the allowed nodes. It is the
// node-independent execution estimate used by priority functions and by
// the C1 metric (where the future process is not yet bound to a node).
func (p *Process) AvgWCET() tm.Time {
	if len(p.WCET) == 0 {
		return 0
	}
	var sum tm.Time
	for _, w := range p.WCET {
		sum += w
	}
	return sum / tm.Time(len(p.WCET))
}

// MaxWCET returns the largest WCET over the allowed nodes.
func (p *Process) MaxWCET() tm.Time {
	var m tm.Time
	for _, w := range p.WCET {
		m = tm.Max(m, w)
	}
	return m
}

// Message is a directed communication between two processes of the same
// graph. If both endpoints end up on the same node the message is exchanged
// through shared memory at zero cost; otherwise it occupies Bytes of a TDMA
// slot belonging to the sender's node.
type Message struct {
	ID    MsgID  `json:"id"`
	Name  string `json:"name,omitempty"`
	Src   ProcID `json:"src"`
	Dst   ProcID `json:"dst"`
	Bytes int    `json:"bytes"`
}

// Graph is a directed acyclic process graph released periodically with
// Period; every process of occurrence k, released at k*Period, must finish
// by k*Period + Deadline.
type Graph struct {
	ID       GraphID    `json:"id"`
	Name     string     `json:"name,omitempty"`
	Period   tm.Time    `json:"period"`
	Deadline tm.Time    `json:"deadline"`
	Procs    []*Process `json:"procs"`
	Msgs     []*Message `json:"msgs"`

	succs map[ProcID][]*Message
	preds map[ProcID][]*Message
}

// buildAdj (re)builds the adjacency caches. Callers mutating Procs/Msgs
// after construction must call Finalize again.
func (g *Graph) buildAdj() {
	g.succs = make(map[ProcID][]*Message, len(g.Procs))
	g.preds = make(map[ProcID][]*Message, len(g.Procs))
	for _, m := range g.Msgs {
		g.succs[m.Src] = append(g.succs[m.Src], m)
		g.preds[m.Dst] = append(g.preds[m.Dst], m)
	}
}

// Finalize builds internal adjacency caches. It is idempotent and called
// automatically by Validate and the accessors below.
func (g *Graph) Finalize() {
	if g.succs == nil {
		g.buildAdj()
	}
}

// OutMsgs returns the messages produced by p, in declaration order.
func (g *Graph) OutMsgs(p ProcID) []*Message { g.Finalize(); return g.succs[p] }

// InMsgs returns the messages consumed by p, in declaration order.
func (g *Graph) InMsgs(p ProcID) []*Message { g.Finalize(); return g.preds[p] }

// TopoOrder returns the processes in a topological order, or an error if
// the graph has a cycle or a message references an unknown process.
func (g *Graph) TopoOrder() ([]*Process, error) {
	g.Finalize()
	byID := make(map[ProcID]*Process, len(g.Procs))
	indeg := make(map[ProcID]int, len(g.Procs))
	for _, p := range g.Procs {
		if _, dup := byID[p.ID]; dup {
			return nil, fmt.Errorf("model: graph %q: duplicate process id %d", g.Name, p.ID)
		}
		byID[p.ID] = p
		indeg[p.ID] = 0
	}
	for _, m := range g.Msgs {
		if _, ok := byID[m.Src]; !ok {
			return nil, fmt.Errorf("model: graph %q: message %d has unknown source %d", g.Name, m.ID, m.Src)
		}
		if _, ok := byID[m.Dst]; !ok {
			return nil, fmt.Errorf("model: graph %q: message %d has unknown destination %d", g.Name, m.ID, m.Dst)
		}
		indeg[m.Dst]++
	}
	// Kahn's algorithm with a deterministic queue (declaration order).
	queue := make([]*Process, 0, len(g.Procs))
	for _, p := range g.Procs {
		if indeg[p.ID] == 0 {
			queue = append(queue, p)
		}
	}
	order := make([]*Process, 0, len(g.Procs))
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		order = append(order, p)
		for _, m := range g.succs[p.ID] {
			indeg[m.Dst]--
			if indeg[m.Dst] == 0 {
				queue = append(queue, byID[m.Dst])
			}
		}
	}
	if len(order) != len(g.Procs) {
		return nil, fmt.Errorf("model: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Application is a set of process graphs delivered as one unit of
// functionality (one increment of the design process).
type Application struct {
	ID     AppID    `json:"id"`
	Name   string   `json:"name,omitempty"`
	Graphs []*Graph `json:"graphs"`
}

// NumProcs returns the total number of processes over all graphs.
func (a *Application) NumProcs() int {
	n := 0
	for _, g := range a.Graphs {
		n += len(g.Procs)
	}
	return n
}

// NumMsgs returns the total number of messages over all graphs.
func (a *Application) NumMsgs() int {
	n := 0
	for _, g := range a.Graphs {
		n += len(g.Msgs)
	}
	return n
}

// Periods returns the distinct graph periods of the application.
func (a *Application) Periods() []tm.Time {
	seen := map[tm.Time]bool{}
	var out []tm.Time
	for _, g := range a.Graphs {
		if !seen[g.Period] {
			seen[g.Period] = true
			out = append(out, g.Period)
		}
	}
	return out
}

// System is the complete design-space input: the architecture and the
// applications placed on it, in arrival order.
type System struct {
	Arch *Architecture  `json:"arch"`
	Apps []*Application `json:"apps"`
}

// Hyperperiod returns the static cyclic schedule horizon: the least common
// multiple of every graph period and of every bus's TDMA round length (each
// TTP cluster cycle must divide the schedule for it to wrap consistently).
func (s *System) Hyperperiod() tm.Time {
	ts := make([]tm.Time, 0, len(s.Arch.Buses)+4)
	for _, b := range s.Arch.Buses {
		ts = append(ts, b.RoundLen())
	}
	for _, a := range s.Apps {
		for _, g := range a.Graphs {
			ts = append(ts, g.Period)
		}
	}
	return tm.LCMAll(ts)
}

// Index provides O(1) lookups from IDs to model objects across a set of
// applications. Build one per scheduling problem rather than per query.
type Index struct {
	Proc     map[ProcID]*Process
	Msg      map[MsgID]*Message
	GraphOf  map[ProcID]*Graph
	MsgGraph map[MsgID]*Graph
	AppOf    map[GraphID]*Application
}

// NewIndex indexes the given applications. Duplicate IDs across
// applications are a model error and reported by Validate, not here.
func NewIndex(apps ...*Application) *Index {
	ix := &Index{
		Proc:     map[ProcID]*Process{},
		Msg:      map[MsgID]*Message{},
		GraphOf:  map[ProcID]*Graph{},
		MsgGraph: map[MsgID]*Graph{},
		AppOf:    map[GraphID]*Application{},
	}
	for _, a := range apps {
		for _, g := range a.Graphs {
			ix.AppOf[g.ID] = a
			for _, p := range g.Procs {
				ix.Proc[p.ID] = p
				ix.GraphOf[p.ID] = g
			}
			for _, m := range g.Msgs {
				ix.Msg[m.ID] = m
				ix.MsgGraph[m.ID] = g
			}
		}
	}
	return ix
}

// Mapping assigns each process to a node.
type Mapping map[ProcID]NodeID

// Clone returns an independent copy of the mapping.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// MergedWith returns a new mapping containing m overlaid with other.
func (m Mapping) MergedWith(other Mapping) Mapping {
	c := m.Clone()
	for k, v := range other {
		c[k] = v
	}
	return c
}
