package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSystem hardens the system loader: arbitrary JSON must never
// panic, and every accepted system must validate, re-serialize, and
// re-parse to an equally valid system.
func FuzzReadSystem(f *testing.F) {
	b := NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]NodeID{n0}, []int{8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	g.UniformProc("P", 10)
	sys := b.MustSystem()
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"arch":null,"apps":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadSystem(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted implies valid (ReadSystem validates), so these must
		// not fail.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted system fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("accepted system fails to serialize: %v", err)
		}
		if _, err := ReadSystem(&out); err != nil {
			t.Fatalf("serialized system fails to re-parse: %v", err)
		}
	})
}
