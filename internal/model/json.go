package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the system as indented JSON.
func (s *System) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("model: encode system: %w", err)
	}
	return nil
}

// ReadSystem parses a system from JSON and validates it.
func ReadSystem(r io.Reader) (*System, error) {
	var s System
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decode system: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteJSON serializes a single application as indented JSON.
func (a *Application) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("model: encode application: %w", err)
	}
	return nil
}

// ReadApplication parses an application from JSON. Validation against an
// architecture is the caller's responsibility (the file stands alone).
func ReadApplication(r io.Reader) (*Application, error) {
	var a Application
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("model: decode application: %w", err)
	}
	return &a, nil
}
