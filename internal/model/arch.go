package model

import (
	"fmt"
	"sort"

	"incdes/internal/tm"
)

// Node is a processing element: CPU, memory and a communication controller
// attached to the TDMA bus. Heterogeneity is expressed through per-process
// WCET tables, not through a node attribute, exactly as in the paper's
// model (a process has a WCET for each node it may run on).
type Node struct {
	ID   NodeID `json:"id"`
	Name string `json:"name,omitempty"`
}

// Bus models the TTP time-division multiple-access bus. Time is divided
// into slots; slot i belongs to node SlotOrder[i] and can carry a frame of
// up to SlotBytes[i] bytes. A TDMA round is the sequence of all slots; the
// round repeats forever. A node may only transmit during its own slots.
//
// Transmitting one byte takes ByteTime; each slot additionally reserves
// SlotOverhead time units (frame header, CRC, inter-frame gap). The slot
// duration is therefore fixed regardless of how many bytes the frame
// actually uses — this is the TTP discipline: the MEDL is static.
type Bus struct {
	SlotOrder    []NodeID `json:"slot_order"`
	SlotBytes    []int    `json:"slot_bytes"`
	ByteTime     tm.Time  `json:"byte_time"`
	SlotOverhead tm.Time  `json:"slot_overhead"`
}

// NumSlots returns the number of slots per TDMA round.
func (b *Bus) NumSlots() int { return len(b.SlotOrder) }

// SlotDur returns the fixed duration of slot i.
func (b *Bus) SlotDur(i int) tm.Time {
	return b.SlotOverhead + tm.Time(b.SlotBytes[i])*b.ByteTime
}

// RoundLen returns the duration of a full TDMA round.
func (b *Bus) RoundLen() tm.Time {
	var l tm.Time
	for i := range b.SlotOrder {
		l += b.SlotDur(i)
	}
	return l
}

// SlotStart returns the absolute start time of slot occurrence
// (round, slot).
func (b *Bus) SlotStart(round, slot int) tm.Time {
	t := tm.Time(round) * b.RoundLen()
	for i := 0; i < slot; i++ {
		t += b.SlotDur(i)
	}
	return t
}

// SlotEnd returns the absolute end time of slot occurrence (round, slot).
// A message carried in this occurrence is available at all receivers at
// SlotEnd (the TTP controller delivers the frame at the end of the slot).
func (b *Bus) SlotEnd(round, slot int) tm.Time {
	return b.SlotStart(round, slot) + b.SlotDur(slot)
}

// SlotsOf returns the indices of the slots owned by node n, ascending.
// In a standard TTP round each node owns exactly one slot, but the model
// permits several.
func (b *Bus) SlotsOf(n NodeID) []int {
	var out []int
	for i, owner := range b.SlotOrder {
		if owner == n {
			out = append(out, i)
		}
	}
	return out
}

// Architecture is the hardware platform: the nodes and the bus that
// connects them.
type Architecture struct {
	Nodes []*Node `json:"nodes"`
	Bus   *Bus    `json:"bus"`
}

// Node returns the node with the given ID, or nil.
func (a *Architecture) Node(id NodeID) *Node {
	for _, n := range a.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// NodeIDs returns all node IDs in ascending order.
func (a *Architecture) NodeIDs() []NodeID {
	ids := make([]NodeID, len(a.Nodes))
	for i, n := range a.Nodes {
		ids[i] = n.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks the architecture for internal consistency.
func (a *Architecture) Validate() error {
	if len(a.Nodes) == 0 {
		return fmt.Errorf("model: architecture has no nodes")
	}
	seen := map[NodeID]bool{}
	for _, n := range a.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("model: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
	}
	b := a.Bus
	if b == nil {
		return fmt.Errorf("model: architecture has no bus")
	}
	if len(b.SlotOrder) == 0 {
		return fmt.Errorf("model: bus has no slots")
	}
	if len(b.SlotBytes) != len(b.SlotOrder) {
		return fmt.Errorf("model: bus has %d slot owners but %d slot capacities",
			len(b.SlotOrder), len(b.SlotBytes))
	}
	if b.ByteTime <= 0 {
		return fmt.Errorf("model: bus byte time must be positive, got %v", b.ByteTime)
	}
	if b.SlotOverhead < 0 {
		return fmt.Errorf("model: bus slot overhead must be non-negative, got %v", b.SlotOverhead)
	}
	owned := map[NodeID]bool{}
	for i, owner := range b.SlotOrder {
		if !seen[owner] {
			return fmt.Errorf("model: slot %d owned by unknown node %d", i, owner)
		}
		if b.SlotBytes[i] <= 0 {
			return fmt.Errorf("model: slot %d has non-positive capacity %d", i, b.SlotBytes[i])
		}
		owned[owner] = true
	}
	for _, n := range a.Nodes {
		if !owned[n.ID] {
			return fmt.Errorf("model: node %d owns no TDMA slot and cannot send messages", n.ID)
		}
	}
	return nil
}
