package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"incdes/internal/tm"
)

// Node is a processing element: CPU, memory and a communication controller
// attached to one or more TDMA buses. Heterogeneity is expressed through
// per-process WCET tables, not through a node attribute, exactly as in the
// paper's model (a process has a WCET for each node it may run on).
//
// Bus attachment is derived, not declared: a node is attached to every bus
// on which it owns at least one TDMA slot (the TTP discipline — every
// cluster member transmits in its own slot, so membership and slot
// ownership coincide). A node attached to two or more buses is a gateway
// and forwards inter-cluster messages hop by hop.
type Node struct {
	ID   NodeID `json:"id"`
	Name string `json:"name,omitempty"`
}

// BusID identifies a TDMA bus of the architecture. Bus IDs are dense:
// Architecture.Buses[i].ID == BusID(i), which Validate enforces, so a
// BusID doubles as an index everywhere.
type BusID int

// Bus models one TTP time-division multiple-access bus. Time is divided
// into slots; slot i belongs to node SlotOrder[i] and can carry a frame of
// up to SlotBytes[i] bytes. A TDMA round is the sequence of all slots; the
// round repeats forever. A node may only transmit during its own slots.
//
// Transmitting one byte takes ByteTime; each slot additionally reserves
// SlotOverhead time units (frame header, CRC, inter-frame gap). The slot
// duration is therefore fixed regardless of how many bytes the frame
// actually uses — this is the TTP discipline: the MEDL is static.
//
// ID is the bus's position in Architecture.Buses. Single-bus systems may
// omit it (it defaults to 0, the only legal value there).
type Bus struct {
	ID           BusID    `json:"id,omitempty"`
	Name         string   `json:"name,omitempty"`
	SlotOrder    []NodeID `json:"slot_order"`
	SlotBytes    []int    `json:"slot_bytes"`
	ByteTime     tm.Time  `json:"byte_time"`
	SlotOverhead tm.Time  `json:"slot_overhead"`
}

// NumSlots returns the number of slots per TDMA round.
func (b *Bus) NumSlots() int { return len(b.SlotOrder) }

// SlotDur returns the fixed duration of slot i.
func (b *Bus) SlotDur(i int) tm.Time {
	return b.SlotOverhead + tm.Time(b.SlotBytes[i])*b.ByteTime
}

// RoundLen returns the duration of a full TDMA round.
func (b *Bus) RoundLen() tm.Time {
	var l tm.Time
	for i := range b.SlotOrder {
		l += b.SlotDur(i)
	}
	return l
}

// SlotStart returns the absolute start time of slot occurrence
// (round, slot).
func (b *Bus) SlotStart(round, slot int) tm.Time {
	t := tm.Time(round) * b.RoundLen()
	for i := 0; i < slot; i++ {
		t += b.SlotDur(i)
	}
	return t
}

// SlotEnd returns the absolute end time of slot occurrence (round, slot).
// A message carried in this occurrence is available at all receivers at
// SlotEnd (the TTP controller delivers the frame at the end of the slot).
func (b *Bus) SlotEnd(round, slot int) tm.Time {
	return b.SlotStart(round, slot) + b.SlotDur(slot)
}

// SlotsOf returns the indices of the slots owned by node n, ascending.
// In a standard TTP round each node owns exactly one slot, but the model
// permits several.
func (b *Bus) SlotsOf(n NodeID) []int {
	var out []int
	for i, owner := range b.SlotOrder {
		if owner == n {
			out = append(out, i)
		}
	}
	return out
}

// Owns reports whether node n owns at least one slot of the bus.
func (b *Bus) Owns(n NodeID) bool {
	for _, owner := range b.SlotOrder {
		if owner == n {
			return true
		}
	}
	return false
}

// Architecture is the hardware platform: the nodes and the TDMA buses
// that connect them. Single-cluster systems have exactly one bus;
// multi-cluster systems have several, joined by gateway nodes that own
// slots on two or more buses. The bus graph (buses as vertices, gateways
// as edges) must be connected so every pair of nodes can communicate.
type Architecture struct {
	Nodes []*Node `json:"nodes"`
	Buses []*Bus  `json:"buses"`
}

// archJSON is the wire shape of Architecture. The legacy singular "bus"
// key is accepted on input and emitted for single-bus architectures, so
// every pre-multi-cluster system file round-trips byte-identically.
type archJSON struct {
	Nodes []*Node `json:"nodes"`
	Bus   *Bus    `json:"bus,omitempty"`
	Buses []*Bus  `json:"buses,omitempty"`
}

// MarshalJSON emits the legacy {"nodes", "bus"} shape for single-bus
// architectures and {"nodes", "buses"} otherwise.
func (a *Architecture) MarshalJSON() ([]byte, error) {
	if len(a.Buses) == 1 && a.Buses[0].ID == 0 {
		return json.Marshal(archJSON{Nodes: a.Nodes, Bus: a.Buses[0]})
	}
	return json.Marshal(archJSON{Nodes: a.Nodes, Buses: a.Buses})
}

// UnmarshalJSON accepts both the legacy singular "bus" key and the
// general "buses" list (exactly one of the two). Unknown keys are always
// rejected: the architecture is the root of every downstream invariant.
func (a *Architecture) UnmarshalJSON(data []byte) error {
	var aux archJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return err
	}
	if aux.Bus != nil && len(aux.Buses) > 0 {
		return fmt.Errorf("model: architecture has both \"bus\" and \"buses\"")
	}
	a.Nodes = aux.Nodes
	if aux.Bus != nil {
		a.Buses = []*Bus{aux.Bus}
	} else {
		a.Buses = aux.Buses
	}
	return nil
}

// Node returns the node with the given ID, or nil.
func (a *Architecture) Node(id NodeID) *Node {
	for _, n := range a.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// NodeIDs returns all node IDs in ascending order.
func (a *Architecture) NodeIDs() []NodeID {
	ids := make([]NodeID, len(a.Nodes))
	for i, n := range a.Nodes {
		ids[i] = n.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// BusesOf returns the IDs of the buses node n is attached to (owns a slot
// on), ascending. An empty result means the node cannot communicate and
// is rejected by Validate.
func (a *Architecture) BusesOf(n NodeID) []BusID {
	var out []BusID
	for i, b := range a.Buses {
		if b.Owns(n) {
			out = append(out, BusID(i))
		}
	}
	return out
}

// IsGateway reports whether node n is attached to two or more buses.
func (a *Architecture) IsGateway(n NodeID) bool {
	count := 0
	for _, b := range a.Buses {
		if b.Owns(n) {
			count++
			if count >= 2 {
				return true
			}
		}
	}
	return false
}

// Gateways returns the gateway nodes (attached to >= 2 buses), ascending.
func (a *Architecture) Gateways() []NodeID {
	var out []NodeID
	for _, n := range a.NodeIDs() {
		if a.IsGateway(n) {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks the architecture for internal consistency: unique node
// IDs, dense bus IDs, well-formed slot tables, every node attached to at
// least one bus, and a connected bus graph (every pair of nodes must be
// reachable through gateway hops for messages to be routable).
func (a *Architecture) Validate() error {
	if len(a.Nodes) == 0 {
		return fmt.Errorf("model: architecture has no nodes")
	}
	seen := map[NodeID]bool{}
	for _, n := range a.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("model: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
	}
	if len(a.Buses) == 0 {
		return fmt.Errorf("model: architecture has no bus")
	}
	for i, b := range a.Buses {
		if b == nil {
			return fmt.Errorf("model: bus %d is null", i)
		}
		if b.ID != BusID(i) {
			return fmt.Errorf("model: bus at position %d has id %d; bus ids must be dense (id == position)", i, b.ID)
		}
		if len(b.SlotOrder) == 0 {
			return fmt.Errorf("model: bus %d has no slots", i)
		}
		if len(b.SlotBytes) != len(b.SlotOrder) {
			return fmt.Errorf("model: bus %d has %d slot owners but %d slot capacities",
				i, len(b.SlotOrder), len(b.SlotBytes))
		}
		if b.ByteTime <= 0 {
			return fmt.Errorf("model: bus %d byte time must be positive, got %v", i, b.ByteTime)
		}
		if b.SlotOverhead < 0 {
			return fmt.Errorf("model: bus %d slot overhead must be non-negative, got %v", i, b.SlotOverhead)
		}
		for si, owner := range b.SlotOrder {
			if !seen[owner] {
				return fmt.Errorf("model: bus %d slot %d owned by unknown node %d", i, si, owner)
			}
			if b.SlotBytes[si] <= 0 {
				return fmt.Errorf("model: bus %d slot %d has non-positive capacity %d", i, si, b.SlotBytes[si])
			}
		}
	}
	for _, n := range a.Nodes {
		if len(a.BusesOf(n.ID)) == 0 {
			return fmt.Errorf("model: node %d owns no TDMA slot and cannot send messages", n.ID)
		}
	}
	if _, err := BuildRoutes(a); err != nil {
		return err
	}
	return nil
}
