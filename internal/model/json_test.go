package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestSystemJSONRoundTrip(t *testing.T) {
	sys, _ := twoNodeSystem(t)
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadSystem(&buf)
	if err != nil {
		t.Fatalf("ReadSystem: %v", err)
	}
	if len(got.Apps) != 1 || got.Apps[0].NumProcs() != 4 {
		t.Errorf("round trip lost data: %d apps", len(got.Apps))
	}
	if got.Arch.Buses[0].RoundLen() != sys.Arch.Buses[0].RoundLen() {
		t.Errorf("bus round length changed: %v != %v",
			got.Arch.Buses[0].RoundLen(), sys.Arch.Buses[0].RoundLen())
	}
	if got.Apps[0].Graphs[0].Procs[0].WCET[0] != 20 {
		t.Error("WCET table lost in round trip")
	}
}

func TestReadSystemRejectsInvalid(t *testing.T) {
	if _, err := ReadSystem(strings.NewReader(`{"arch": null, "apps": []}`)); err == nil {
		t.Error("nil architecture accepted")
	}
	if _, err := ReadSystem(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadSystem(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestApplicationJSONRoundTrip(t *testing.T) {
	sys, _ := twoNodeSystem(t)
	app := sys.Apps[0]
	var buf bytes.Buffer
	if err := app.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadApplication(&buf)
	if err != nil {
		t.Fatalf("ReadApplication: %v", err)
	}
	if got.NumProcs() != app.NumProcs() || got.NumMsgs() != app.NumMsgs() {
		t.Error("application round trip lost objects")
	}
}
