package model

import "fmt"

// Hop is one leg of a message route: a transmission on bus Bus from node
// From (which must own a slot on that bus) delivered to node To. For a
// single-bus architecture every route is exactly one hop.
type Hop struct {
	Bus  BusID
	From NodeID
	To   NodeID
}

// RouteTable holds the precomputed all-pairs routes of an architecture.
// Routing is deterministic: for a given architecture the route between
// any (src, dst) pair is a pure function of the topology, independent of
// map iteration order, search order, or anything else run-dependent.
// This is load-bearing — schedules (and therefore fingerprints, golden
// traces and cache keys) embed the chosen route.
//
// The rule: a route follows a shortest path in the bus graph (fewest
// hops). Ties are broken by preferring the lowest bus ID at each step,
// and within a bus the lowest-ID gateway node. Direct delivery (src and
// dst share a bus) is always a single hop on the lowest shared bus.
type RouteTable struct {
	arch   *Architecture
	routes map[[2]NodeID][]Hop
}

// BuildRoutes precomputes deterministic shortest-hop routes between all
// node pairs. It fails if some pair is unreachable (the bus graph is
// disconnected), which Architecture.Validate surfaces as a model error.
func BuildRoutes(a *Architecture) (*RouteTable, error) {
	rt := &RouteTable{arch: a, routes: map[[2]NodeID][]Hop{}}

	// busNext[b] = sorted node IDs attached to bus b; gateway candidates
	// are the attached nodes that are also attached to other buses.
	attached := make([][]NodeID, len(a.Buses))
	for bi, b := range a.Buses {
		for _, n := range a.NodeIDs() {
			if b.Owns(n) {
				attached[bi] = append(attached[bi], n)
			}
		}
	}

	ids := a.NodeIDs()
	for _, src := range ids {
		for _, dst := range ids {
			if src == dst {
				continue
			}
			hops, err := rt.build(src, dst, attached)
			if err != nil {
				return nil, err
			}
			rt.routes[[2]NodeID{src, dst}] = hops
		}
	}
	return rt, nil
}

// build computes the route from src to dst via a BFS over buses. The BFS
// explores buses in ascending ID order from a sorted frontier, so the
// first path found is the deterministic shortest one under the tie-break
// rule documented on RouteTable.
func (rt *RouteTable) build(src, dst NodeID, attached [][]NodeID) ([]Hop, error) {
	a := rt.arch

	// Direct delivery: lowest shared bus.
	for bi, b := range a.Buses {
		if b.Owns(src) && b.Owns(dst) {
			return []Hop{{Bus: BusID(bi), From: src, To: dst}}, nil
		}
	}

	// BFS over the bus graph. parent[b] records how bus b was reached:
	// from bus prev via gateway gw. Seed with src's buses in ascending
	// order; expand in FIFO order (frontier is always ID-sorted because
	// seeds are sorted and each level appends in ascending bus order).
	type via struct {
		prev BusID
		gw   NodeID
	}
	const none = BusID(-1)
	parent := make([]via, len(a.Buses))
	visited := make([]bool, len(a.Buses))
	var queue []BusID
	for _, bi := range a.BusesOf(src) {
		visited[bi] = true
		parent[bi] = via{prev: none}
		queue = append(queue, bi)
	}
	goal := none
	for len(queue) > 0 && goal == none {
		cur := queue[0]
		queue = queue[1:]
		if a.Buses[cur].Owns(dst) {
			goal = cur
			break
		}
		// Neighbors: every bus sharing a gateway with cur, lowest bus
		// first; record the lowest-ID gateway for each.
		for nb := range a.Buses {
			nbi := BusID(nb)
			if visited[nbi] || nbi == cur {
				continue
			}
			gw := NodeID(-1)
			for _, n := range attached[cur] {
				if a.Buses[nbi].Owns(n) {
					gw = n
					break // attached is ascending, first match is lowest
				}
			}
			if gw < 0 {
				continue
			}
			visited[nbi] = true
			parent[nbi] = via{prev: cur, gw: gw}
			queue = append(queue, nbi)
		}
	}
	if goal == none {
		return nil, fmt.Errorf("model: no route from node %d to node %d (bus graph disconnected)", src, dst)
	}

	// Walk parents back from the goal bus, then reverse into hops.
	var chain []via // chain[i] = entry for bus path[i]
	var path []BusID
	for b := goal; ; b = parent[b].prev {
		path = append(path, b)
		chain = append(chain, parent[b])
		if parent[b].prev == none {
			break
		}
	}
	// path is goal..firstBus; reverse it.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
		chain[i], chain[j] = chain[j], chain[i]
	}
	hops := make([]Hop, 0, len(path))
	from := src
	for i, b := range path {
		var to NodeID
		if i == len(path)-1 {
			to = dst
		} else {
			// The gateway that carried us onto path[i+1].
			to = chain[i+1].gw
		}
		hops = append(hops, Hop{Bus: b, From: from, To: to})
		from = to
	}
	return hops, nil
}

// Route returns the hop sequence from src to dst. src == dst returns
// nil (same-node communication is shared memory, no bus traffic). The
// returned slice is owned by the table; callers must not mutate it.
func (rt *RouteTable) Route(src, dst NodeID) []Hop {
	if src == dst {
		return nil
	}
	return rt.routes[[2]NodeID{src, dst}]
}

// MaxHops returns the longest route length in the table (1 for any
// single-bus architecture).
func (rt *RouteTable) MaxHops() int {
	max := 0
	for _, hops := range rt.routes {
		if len(hops) > max {
			max = len(hops)
		}
	}
	return max
}
