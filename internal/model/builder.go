package model

import (
	"fmt"

	"incdes/internal/tm"
)

// Builder assembles systems by hand with automatically assigned unique IDs.
// It is the convenient front door for examples and tests; generated and
// deserialized systems bypass it.
type Builder struct {
	arch Architecture
	apps []*Application

	nextNode  NodeID
	nextApp   AppID
	nextGraph GraphID
	nextProc  ProcID
	nextMsg   MsgID
}

// NewBuilder returns an empty system builder.
func NewBuilder() *Builder {
	return &Builder{arch: Architecture{Buses: []*Bus{{}}}}
}

// Node adds a processing node and returns its ID.
func (b *Builder) Node(name string) NodeID {
	id := b.nextNode
	b.nextNode++
	b.arch.Nodes = append(b.arch.Nodes, &Node{ID: id, Name: name})
	return id
}

// Bus configures the single (first) TDMA bus: slot ownership order,
// per-slot capacities in bytes, time per byte, and per-slot overhead.
// For multi-cluster systems use AddBus to append further buses.
func (b *Builder) Bus(order []NodeID, bytes []int, byteTime, overhead tm.Time) {
	b.arch.Buses[0] = &Bus{
		SlotOrder:    order,
		SlotBytes:    bytes,
		ByteTime:     byteTime,
		SlotOverhead: overhead,
	}
}

// AddBus appends a further TDMA bus (bus IDs are assigned densely in
// append order) and returns its ID. Call Bus (or UniformBus) first to
// configure bus 0. Nodes owning slots on two or more buses become
// gateways.
func (b *Builder) AddBus(order []NodeID, bytes []int, byteTime, overhead tm.Time) BusID {
	id := BusID(len(b.arch.Buses))
	b.arch.Buses = append(b.arch.Buses, &Bus{
		ID:           id,
		SlotOrder:    order,
		SlotBytes:    bytes,
		ByteTime:     byteTime,
		SlotOverhead: overhead,
	})
	return id
}

// UniformBus configures one slot per node, in node order, all with the
// same capacity.
func (b *Builder) UniformBus(slotBytes int, byteTime, overhead tm.Time) {
	order := make([]NodeID, len(b.arch.Nodes))
	caps := make([]int, len(b.arch.Nodes))
	for i, n := range b.arch.Nodes {
		order[i] = n.ID
		caps[i] = slotBytes
	}
	b.Bus(order, caps, byteTime, overhead)
}

// App starts a new application.
func (b *Builder) App(name string) *AppBuilder {
	id := b.nextApp
	b.nextApp++
	app := &Application{ID: id, Name: name}
	b.apps = append(b.apps, app)
	return &AppBuilder{b: b, app: app}
}

// System validates and returns the assembled system.
func (b *Builder) System() (*System, error) {
	s := &System{Arch: &b.arch, Apps: b.apps}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSystem is System for tests and examples where the input is static.
func (b *Builder) MustSystem() *System {
	s, err := b.System()
	if err != nil {
		panic(fmt.Sprintf("model.Builder: %v", err))
	}
	return s
}

// AppBuilder adds graphs to one application.
type AppBuilder struct {
	b   *Builder
	app *Application
}

// Application returns the application built so far.
func (ab *AppBuilder) Application() *Application { return ab.app }

// Graph starts a new process graph with the given period and deadline.
func (ab *AppBuilder) Graph(name string, period, deadline tm.Time) *GraphBuilder {
	id := ab.b.nextGraph
	ab.b.nextGraph++
	g := &Graph{ID: id, Name: name, Period: period, Deadline: deadline}
	ab.app.Graphs = append(ab.app.Graphs, g)
	return &GraphBuilder{b: ab.b, g: g}
}

// GraphBuilder adds processes and messages to one graph.
type GraphBuilder struct {
	b *Builder
	g *Graph
}

// Graph returns the graph built so far.
func (gb *GraphBuilder) Graph() *Graph { return gb.g }

// Proc adds a process with an explicit per-node WCET table.
func (gb *GraphBuilder) Proc(name string, wcet map[NodeID]tm.Time) ProcID {
	id := gb.b.nextProc
	gb.b.nextProc++
	gb.g.Procs = append(gb.g.Procs, &Process{ID: id, Name: name, WCET: wcet})
	gb.g.succs = nil // invalidate adjacency cache
	return id
}

// UniformProc adds a process that can run on every node of the
// architecture with the same WCET.
func (gb *GraphBuilder) UniformProc(name string, wcet tm.Time) ProcID {
	table := make(map[NodeID]tm.Time, len(gb.b.arch.Nodes))
	for _, n := range gb.b.arch.Nodes {
		table[n.ID] = wcet
	}
	return gb.Proc(name, table)
}

// Msg adds a message of the given size between two processes of this graph.
func (gb *GraphBuilder) Msg(src, dst ProcID, bytes int) MsgID {
	id := gb.b.nextMsg
	gb.b.nextMsg++
	gb.g.Msgs = append(gb.g.Msgs, &Message{
		ID: id, Name: fmt.Sprintf("m%d", id), Src: src, Dst: dst, Bytes: bytes,
	})
	gb.g.succs = nil // invalidate adjacency cache
	return id
}
