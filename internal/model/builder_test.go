package model

import (
	"testing"

	"incdes/internal/tm"
)

func TestBuilderAssignsUniqueIDs(t *testing.T) {
	b := NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	if n0 == n1 {
		t.Fatal("duplicate node IDs")
	}
	b.UniformBus(8, 1, 2)
	a1 := b.App("a1")
	a2 := b.App("a2")
	g1 := a1.Graph("g1", 100, 100)
	g2 := a2.Graph("g2", 100, 100)
	p1 := g1.UniformProc("p", 10)
	p2 := g2.UniformProc("p", 10)
	if p1 == p2 {
		t.Fatal("duplicate process IDs across applications")
	}
	if g1.Graph().ID == g2.Graph().ID {
		t.Fatal("duplicate graph IDs")
	}
	if a1.Application().ID == a2.Application().ID {
		t.Fatal("duplicate application IDs")
	}
}

func TestUniformBusCoversAllNodes(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 3; i++ {
		b.Node("N")
	}
	b.UniformBus(16, 2, 4)
	app := b.App("a")
	app.Graph("g", 1000, 1000).UniformProc("p", 10)
	sys, err := b.System()
	if err != nil {
		t.Fatalf("System: %v", err)
	}
	if sys.Arch.Buses[0].NumSlots() != 3 {
		t.Errorf("%d slots, want 3", sys.Arch.Buses[0].NumSlots())
	}
	for i := 0; i < 3; i++ {
		if sys.Arch.Buses[0].SlotBytes[i] != 16 {
			t.Errorf("slot %d capacity %d, want 16", i, sys.Arch.Buses[0].SlotBytes[i])
		}
	}
	// UniformProc must cover every node.
	p := sys.Apps[0].Graphs[0].Procs[0]
	if len(p.WCET) != 3 {
		t.Errorf("uniform process allowed on %d nodes, want 3", len(p.WCET))
	}
}

func TestBuilderSystemRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	b.Node("N0")
	b.UniformBus(8, 1, 2)
	// Application without graphs fails validation.
	b.App("empty")
	if _, err := b.System(); err == nil {
		t.Error("empty application accepted")
	}
}

func TestMustSystemPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSystem did not panic on invalid input")
		}
	}()
	b := NewBuilder()
	b.Node("N0")
	b.UniformBus(8, 1, 2)
	b.App("empty")
	b.MustSystem()
}

func TestAdjacencyCacheInvalidation(t *testing.T) {
	b := NewBuilder()
	n0 := b.Node("N0")
	b.UniformBus(8, 1, 2)
	gb := b.App("a").Graph("g", 100, 100)
	p1 := gb.Proc("p1", map[NodeID]tm.Time{n0: 10})
	p2 := gb.Proc("p2", map[NodeID]tm.Time{n0: 10})
	g := gb.Graph()
	if got := len(g.OutMsgs(p1)); got != 0 {
		t.Fatalf("premature out-degree %d", got)
	}
	// Adding a message through the builder must invalidate the cache.
	gb.Msg(p1, p2, 4)
	if got := len(g.OutMsgs(p1)); got != 1 {
		t.Errorf("out-degree after Msg = %d, want 1 (stale adjacency cache)", got)
	}
}
