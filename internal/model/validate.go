package model

import "fmt"

// Validate checks a graph in the context of an architecture: acyclicity,
// positive timing parameters, WCETs restricted to real nodes.
func (g *Graph) Validate(arch *Architecture) error {
	if g.Period <= 0 {
		return fmt.Errorf("model: graph %q has non-positive period %v", g.Name, g.Period)
	}
	if g.Deadline <= 0 || g.Deadline > g.Period {
		return fmt.Errorf("model: graph %q deadline %v must satisfy 0 < D <= period %v",
			g.Name, g.Deadline, g.Period)
	}
	if len(g.Procs) == 0 {
		return fmt.Errorf("model: graph %q has no processes", g.Name)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, p := range g.Procs {
		if len(p.WCET) == 0 {
			return fmt.Errorf("model: process %d (%s) has no allowed node", p.ID, p.Name)
		}
		for n, w := range p.WCET {
			if arch != nil && arch.Node(n) == nil {
				return fmt.Errorf("model: process %d has WCET for unknown node %d", p.ID, n)
			}
			if w <= 0 {
				return fmt.Errorf("model: process %d has non-positive WCET %v on node %d", p.ID, w, n)
			}
			if w > g.Deadline {
				return fmt.Errorf("model: process %d WCET %v on node %d exceeds graph deadline %v",
					p.ID, w, n, g.Deadline)
			}
		}
	}
	seenMsg := map[MsgID]bool{}
	for _, m := range g.Msgs {
		if seenMsg[m.ID] {
			return fmt.Errorf("model: graph %q: duplicate message id %d", g.Name, m.ID)
		}
		seenMsg[m.ID] = true
		if m.Bytes <= 0 {
			return fmt.Errorf("model: message %d has non-positive size %d", m.ID, m.Bytes)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("model: message %d is a self-loop on process %d", m.ID, m.Src)
		}
	}
	return nil
}

// Validate checks the application against the architecture.
func (a *Application) Validate(arch *Architecture) error {
	if len(a.Graphs) == 0 {
		return fmt.Errorf("model: application %q has no graphs", a.Name)
	}
	seenG := map[GraphID]bool{}
	for _, g := range a.Graphs {
		if seenG[g.ID] {
			return fmt.Errorf("model: application %q: duplicate graph id %d", a.Name, g.ID)
		}
		seenG[g.ID] = true
		if err := g.Validate(arch); err != nil {
			return fmt.Errorf("application %q: %w", a.Name, err)
		}
	}
	return nil
}

// Validate checks the complete system: architecture, every application,
// global ID uniqueness, and that every message fits into at least one slot
// of its possible sender nodes.
func (s *System) Validate() error {
	if s.Arch == nil {
		return fmt.Errorf("model: system has no architecture")
	}
	if err := s.Arch.Validate(); err != nil {
		return err
	}
	seenApp := map[AppID]bool{}
	seenGraph := map[GraphID]bool{}
	seenProc := map[ProcID]bool{}
	seenMsg := map[MsgID]bool{}
	for _, a := range s.Apps {
		if seenApp[a.ID] {
			return fmt.Errorf("model: duplicate application id %d", a.ID)
		}
		seenApp[a.ID] = true
		if err := a.Validate(s.Arch); err != nil {
			return err
		}
		for _, g := range a.Graphs {
			if seenGraph[g.ID] {
				return fmt.Errorf("model: graph id %d used by more than one application", g.ID)
			}
			seenGraph[g.ID] = true
			for _, p := range g.Procs {
				if seenProc[p.ID] {
					return fmt.Errorf("model: process id %d used more than once", p.ID)
				}
				seenProc[p.ID] = true
			}
			for _, m := range g.Msgs {
				if seenMsg[m.ID] {
					return fmt.Errorf("model: message id %d used more than once", m.ID)
				}
				seenMsg[m.ID] = true
				if err := s.msgFitsSomeSlot(g, m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// msgFitsSomeSlot verifies that for every node the source process may be
// mapped to, the message fits into at least one slot of that node: a
// message larger than its sender's slot can never be transmitted (the
// model does not fragment frames).
func (s *System) msgFitsSomeSlot(g *Graph, m *Message) error {
	var src *Process
	for _, p := range g.Procs {
		if p.ID == m.Src {
			src = p
			break
		}
	}
	if src == nil {
		return fmt.Errorf("model: message %d has unknown source %d", m.ID, m.Src)
	}
	for n := range src.WCET {
		fits := false
		for _, b := range s.Arch.Buses {
			for _, slot := range b.SlotsOf(n) {
				if m.Bytes <= b.SlotBytes[slot] {
					fits = true
					break
				}
			}
			if fits {
				break
			}
		}
		if !fits {
			return fmt.Errorf("model: message %d (%d bytes) does not fit any slot of candidate sender node %d",
				m.ID, m.Bytes, n)
		}
	}
	return nil
}
