package model

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// chain3 is a three-cluster chain: bus 0 carries nodes 0-2, bus 1 nodes
// 2-4, bus 2 nodes 4-5. Nodes 2 and 4 are the gateways.
func chain3() *Architecture {
	mkBus := func(id BusID, owners ...NodeID) *Bus {
		b := &Bus{ID: id, ByteTime: 1, SlotOverhead: 2}
		for _, n := range owners {
			b.SlotOrder = append(b.SlotOrder, n)
			b.SlotBytes = append(b.SlotBytes, 16)
		}
		return b
	}
	return &Architecture{
		Nodes: []*Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}, {ID: 5}},
		Buses: []*Bus{
			mkBus(0, 0, 1, 2),
			mkBus(1, 2, 3, 4),
			mkBus(2, 4, 5),
		},
	}
}

func TestGatewayDerivation(t *testing.T) {
	a := chain3()
	if err := a.Validate(); err != nil {
		t.Fatalf("chain architecture invalid: %v", err)
	}
	if got := a.Gateways(); !reflect.DeepEqual(got, []NodeID{2, 4}) {
		t.Errorf("Gateways() = %v, want [2 4]", got)
	}
	if !a.IsGateway(2) || a.IsGateway(1) {
		t.Error("IsGateway misclassifies nodes")
	}
	if got := a.BusesOf(4); !reflect.DeepEqual(got, []BusID{1, 2}) {
		t.Errorf("BusesOf(4) = %v, want [1 2]", got)
	}
}

func TestRouteDirectAndMultiHop(t *testing.T) {
	rt, err := BuildRoutes(chain3())
	if err != nil {
		t.Fatal(err)
	}
	// Same bus: one hop, even for the gateway pair 2-4 (they share bus 1).
	if got := rt.Route(0, 2); !reflect.DeepEqual(got, []Hop{{Bus: 0, From: 0, To: 2}}) {
		t.Errorf("Route(0,2) = %v", got)
	}
	if got := rt.Route(2, 4); !reflect.DeepEqual(got, []Hop{{Bus: 1, From: 2, To: 4}}) {
		t.Errorf("Route(2,4) = %v", got)
	}
	// Two hops across one gateway.
	if got := rt.Route(0, 3); !reflect.DeepEqual(got, []Hop{
		{Bus: 0, From: 0, To: 2}, {Bus: 1, From: 2, To: 3},
	}) {
		t.Errorf("Route(0,3) = %v", got)
	}
	// Three hops end to end, and the reverse direction mirrors it.
	if got := rt.Route(0, 5); !reflect.DeepEqual(got, []Hop{
		{Bus: 0, From: 0, To: 2}, {Bus: 1, From: 2, To: 4}, {Bus: 2, From: 4, To: 5},
	}) {
		t.Errorf("Route(0,5) = %v", got)
	}
	if got := rt.Route(5, 0); !reflect.DeepEqual(got, []Hop{
		{Bus: 2, From: 5, To: 4}, {Bus: 1, From: 4, To: 2}, {Bus: 0, From: 2, To: 0},
	}) {
		t.Errorf("Route(5,0) = %v", got)
	}
	if rt.Route(3, 3) != nil {
		t.Error("Route(n,n) must be nil (same-node communication)")
	}
	if rt.MaxHops() != 3 {
		t.Errorf("MaxHops() = %d, want 3", rt.MaxHops())
	}
}

// TestRouteTieBreaks pins the determinism rules: lowest shared bus for
// direct delivery, lowest bus ID per BFS step, lowest gateway ID within
// a bus.
func TestRouteTieBreaks(t *testing.T) {
	mkBus := func(id BusID, owners ...NodeID) *Bus {
		b := &Bus{ID: id, ByteTime: 1}
		for _, n := range owners {
			b.SlotOrder = append(b.SlotOrder, n)
			b.SlotBytes = append(b.SlotBytes, 8)
		}
		return b
	}

	// Nodes 1 and 2 share both buses: direct delivery must pick bus 0.
	both := &Architecture{
		Nodes: []*Node{{ID: 1}, {ID: 2}},
		Buses: []*Bus{mkBus(0, 1, 2), mkBus(1, 1, 2)},
	}
	rt, err := BuildRoutes(both)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Route(1, 2); got[0].Bus != 0 {
		t.Errorf("direct delivery chose bus %d, want lowest shared bus 0", got[0].Bus)
	}

	// Diamond: 0 on bus 0; 9 reachable equally via bus 1 (gateway 1) or
	// bus 2 (gateway 2). The lowest-bus-ID rule must pick bus 1.
	diamond := &Architecture{
		Nodes: []*Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 9}},
		Buses: []*Bus{mkBus(0, 0, 1, 2), mkBus(1, 1, 9), mkBus(2, 2, 9)},
	}
	rt, err = BuildRoutes(diamond)
	if err != nil {
		t.Fatal(err)
	}
	want := []Hop{{Bus: 0, From: 0, To: 1}, {Bus: 1, From: 1, To: 9}}
	if got := rt.Route(0, 9); !reflect.DeepEqual(got, want) {
		t.Errorf("Route(0,9) = %v, want %v (lowest-bus-ID tie-break)", got, want)
	}

	// Two gateways join the same pair of buses: the lowest gateway ID
	// must carry the traffic.
	twoGw := &Architecture{
		Nodes: []*Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 9}},
		Buses: []*Bus{mkBus(0, 0, 1, 2), mkBus(1, 1, 2, 9)},
	}
	rt, err = BuildRoutes(twoGw)
	if err != nil {
		t.Fatal(err)
	}
	want = []Hop{{Bus: 0, From: 0, To: 1}, {Bus: 1, From: 1, To: 9}}
	if got := rt.Route(0, 9); !reflect.DeepEqual(got, want) {
		t.Errorf("Route(0,9) = %v, want %v (lowest-gateway-ID tie-break)", got, want)
	}
}

func TestDisconnectedBusGraphRejected(t *testing.T) {
	a := &Architecture{
		Nodes: []*Node{{ID: 0}, {ID: 1}},
		Buses: []*Bus{
			{ID: 0, SlotOrder: []NodeID{0}, SlotBytes: []int{8}, ByteTime: 1},
			{ID: 1, SlotOrder: []NodeID{1}, SlotBytes: []int{8}, ByteTime: 1},
		},
	}
	err := a.Validate()
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("disconnected bus graph accepted (err = %v)", err)
	}
}

func TestBusIDsMustBeDense(t *testing.T) {
	a := chain3()
	a.Buses[1].ID = 7
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "dense") {
		t.Errorf("sparse bus ids accepted (err = %v)", err)
	}
}

// TestArchitectureJSONCompat pins the wire compatibility rules: one-bus
// architectures keep the legacy singular "bus" key byte-for-byte, multi-
// bus architectures use "buses", both parse, and a document carrying both
// keys is rejected.
func TestArchitectureJSONCompat(t *testing.T) {
	single := &Architecture{
		Nodes: []*Node{{ID: 0}},
		Buses: []*Bus{{SlotOrder: []NodeID{0}, SlotBytes: []int{8}, ByteTime: 1}},
	}
	data, err := json.Marshal(single)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"bus":`)) || bytes.Contains(data, []byte(`"buses":`)) {
		t.Errorf("single-bus architecture serialized as %s, want legacy \"bus\" key", data)
	}
	var rt Architecture
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatalf("legacy round-trip: %v", err)
	}
	if len(rt.Buses) != 1 || rt.Buses[0].RoundLen() != single.Buses[0].RoundLen() {
		t.Errorf("legacy round-trip lost the bus: %+v", rt.Buses)
	}

	multi := chain3()
	data, err = json.Marshal(multi)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"buses":`)) || bytes.Contains(data, []byte(`"bus":`)) {
		t.Errorf("multi-bus architecture serialized as %s, want \"buses\" key", data)
	}
	var rt2 Architecture
	if err := json.Unmarshal(data, &rt2); err != nil {
		t.Fatalf("multi-bus round-trip: %v", err)
	}
	if err := rt2.Validate(); err != nil {
		t.Errorf("multi-bus round-trip invalid: %v", err)
	}
	if len(rt2.Buses) != 3 || !rt2.IsGateway(2) {
		t.Errorf("multi-bus round-trip lost topology: %d buses", len(rt2.Buses))
	}

	if err := json.Unmarshal([]byte(`{"nodes":[{"id":0}],"bus":{"slot_order":[0],"slot_bytes":[8],"byte_time":1,"slot_overhead":0},"buses":[{"slot_order":[0],"slot_bytes":[8],"byte_time":1,"slot_overhead":0}]}`), &rt); err == nil {
		t.Error("document with both \"bus\" and \"buses\" accepted")
	}
}
