package model

import (
	"reflect"
	"testing"

	"incdes/internal/tm"
)

// twoNodeSystem builds the slide-5 style platform: two nodes, slot order
// (N1, N0), and one application with a diamond graph P1 -> {P2, P3} -> P4.
func twoNodeSystem(t *testing.T) (*System, []ProcID) {
	t.Helper()
	b := NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]NodeID{n1, n0}, []int{8, 8}, 2, 2)
	app := b.App("app")
	g := app.Graph("G", 200, 200)
	p1 := g.Proc("P1", map[NodeID]tm.Time{n0: 20, n1: 30})
	p2 := g.Proc("P2", map[NodeID]tm.Time{n0: 30, n1: 20})
	p3 := g.Proc("P3", map[NodeID]tm.Time{n1: 25})
	p4 := g.Proc("P4", map[NodeID]tm.Time{n0: 20, n1: 20})
	g.Msg(p1, p2, 4)
	g.Msg(p1, p3, 4)
	g.Msg(p2, p4, 4)
	g.Msg(p3, p4, 4)
	sys, err := b.System()
	if err != nil {
		t.Fatalf("building two-node system: %v", err)
	}
	return sys, []ProcID{p1, p2, p3, p4}
}

func TestProcessAccessors(t *testing.T) {
	p := &Process{ID: 1, WCET: map[NodeID]tm.Time{2: 30, 0: 10, 1: 20}}
	if got := p.AllowedNodes(); !reflect.DeepEqual(got, []NodeID{0, 1, 2}) {
		t.Errorf("AllowedNodes = %v", got)
	}
	if got := p.AvgWCET(); got != 20 {
		t.Errorf("AvgWCET = %v, want 20", got)
	}
	if got := p.MaxWCET(); got != 30 {
		t.Errorf("MaxWCET = %v, want 30", got)
	}
	empty := &Process{}
	if empty.AvgWCET() != 0 || empty.MaxWCET() != 0 {
		t.Error("zero-table process should report zero WCETs")
	}
}

func TestTopoOrder(t *testing.T) {
	sys, ps := twoNodeSystem(t)
	g := sys.Apps[0].Graphs[0]
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[ProcID]int{}
	for i, p := range order {
		pos[p.ID] = i
	}
	for _, m := range g.Msgs {
		if pos[m.Src] >= pos[m.Dst] {
			t.Errorf("message %d: src %d not before dst %d", m.ID, m.Src, m.Dst)
		}
	}
	if order[0].ID != ps[0] || order[3].ID != ps[3] {
		t.Errorf("diamond order wrong: %v", order)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := &Graph{
		Name: "cyc", Period: 100, Deadline: 100,
		Procs: []*Process{
			{ID: 0, WCET: map[NodeID]tm.Time{0: 10}},
			{ID: 1, WCET: map[NodeID]tm.Time{0: 10}},
		},
		Msgs: []*Message{
			{ID: 0, Src: 0, Dst: 1, Bytes: 1},
			{ID: 1, Src: 1, Dst: 0, Bytes: 1},
		},
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestGraphAdjacency(t *testing.T) {
	sys, ps := twoNodeSystem(t)
	g := sys.Apps[0].Graphs[0]
	if got := len(g.OutMsgs(ps[0])); got != 2 {
		t.Errorf("P1 out-degree = %d, want 2", got)
	}
	if got := len(g.InMsgs(ps[3])); got != 2 {
		t.Errorf("P4 in-degree = %d, want 2", got)
	}
	if got := len(g.InMsgs(ps[0])); got != 0 {
		t.Errorf("P1 in-degree = %d, want 0", got)
	}
}

func TestBusTiming(t *testing.T) {
	bus := &Bus{
		SlotOrder:    []NodeID{1, 0},
		SlotBytes:    []int{8, 4},
		ByteTime:     2,
		SlotOverhead: 3,
	}
	if got := bus.SlotDur(0); got != 19 { // 3 + 8*2
		t.Errorf("SlotDur(0) = %v, want 19", got)
	}
	if got := bus.SlotDur(1); got != 11 { // 3 + 4*2
		t.Errorf("SlotDur(1) = %v, want 11", got)
	}
	if got := bus.RoundLen(); got != 30 {
		t.Errorf("RoundLen = %v, want 30", got)
	}
	if got := bus.SlotStart(0, 0); got != 0 {
		t.Errorf("SlotStart(0,0) = %v", got)
	}
	if got := bus.SlotStart(0, 1); got != 19 {
		t.Errorf("SlotStart(0,1) = %v, want 19", got)
	}
	if got := bus.SlotStart(2, 1); got != 79 { // 2*30 + 19
		t.Errorf("SlotStart(2,1) = %v, want 79", got)
	}
	if got := bus.SlotEnd(0, 1); got != 30 {
		t.Errorf("SlotEnd(0,1) = %v, want 30", got)
	}
	if got := bus.SlotsOf(0); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("SlotsOf(0) = %v, want [1]", got)
	}
}

func TestHyperperiod(t *testing.T) {
	b := NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]NodeID{n0}, []int{10}, 1, 0) // round length 10
	app := b.App("a")
	g1 := app.Graph("G1", 40, 40)
	g1.UniformProc("P", 10)
	g2 := app.Graph("G2", 60, 50)
	g2.UniformProc("Q", 10)
	sys := b.MustSystem()
	if got := sys.Hyperperiod(); got != 120 {
		t.Errorf("Hyperperiod = %v, want 120 (lcm of 40, 60, round 10)", got)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	mk := func(mutate func(*System)) error {
		sys, _ := twoNodeSystem(t)
		mutate(sys)
		return sys.Validate()
	}
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"zero period", func(s *System) { s.Apps[0].Graphs[0].Period = 0 }},
		{"deadline beyond period", func(s *System) { s.Apps[0].Graphs[0].Deadline = 500 }},
		{"wcet beyond deadline", func(s *System) {
			s.Apps[0].Graphs[0].Procs[0].WCET[0] = 300
		}},
		{"no allowed node", func(s *System) {
			s.Apps[0].Graphs[0].Procs[0].WCET = nil
		}},
		{"oversized message", func(s *System) {
			s.Apps[0].Graphs[0].Msgs[0].Bytes = 100
		}},
		{"self message", func(s *System) {
			m := s.Apps[0].Graphs[0].Msgs[0]
			m.Dst = m.Src
		}},
		{"duplicate proc id", func(s *System) {
			g := s.Apps[0].Graphs[0]
			g.Procs[1].ID = g.Procs[0].ID
			g.succs = nil
		}},
		{"unknown wcet node", func(s *System) {
			s.Apps[0].Graphs[0].Procs[0].WCET[99] = 10
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mk(tc.mutate); err == nil {
				t.Errorf("%s: Validate accepted invalid system", tc.name)
			}
		})
	}
}

func TestValidateArchitecture(t *testing.T) {
	arch := &Architecture{
		Nodes: []*Node{{ID: 0}, {ID: 1}},
		Buses: []*Bus{{
			SlotOrder: []NodeID{0, 1},
			SlotBytes: []int{8, 8},
			ByteTime:  1,
		}},
	}
	if err := arch.Validate(); err != nil {
		t.Errorf("valid architecture rejected: %v", err)
	}
	// A node without a slot cannot send messages.
	arch.Buses[0].SlotOrder = []NodeID{0, 0}
	if err := arch.Validate(); err == nil {
		t.Error("node without a slot accepted")
	}
}

func TestIndexCoversAllObjects(t *testing.T) {
	sys, ps := twoNodeSystem(t)
	ix := NewIndex(sys.Apps...)
	if len(ix.Proc) != 4 || len(ix.Msg) != 4 {
		t.Fatalf("index sizes: %d procs, %d msgs", len(ix.Proc), len(ix.Msg))
	}
	for _, id := range ps {
		if ix.Proc[id] == nil {
			t.Errorf("process %d missing from index", id)
		}
		if ix.GraphOf[id] == nil {
			t.Errorf("GraphOf(%d) missing", id)
		}
	}
}

func TestMappingClone(t *testing.T) {
	m := Mapping{1: 0, 2: 1}
	c := m.Clone()
	c[1] = 1
	if m[1] != 0 {
		t.Error("Clone aliases original")
	}
	merged := m.MergedWith(Mapping{3: 0})
	if len(merged) != 3 || merged[3] != 0 || merged[1] != 0 {
		t.Errorf("MergedWith = %v", merged)
	}
}

func TestApplicationCounts(t *testing.T) {
	sys, _ := twoNodeSystem(t)
	app := sys.Apps[0]
	if app.NumProcs() != 4 || app.NumMsgs() != 4 {
		t.Errorf("counts = %d procs, %d msgs", app.NumProcs(), app.NumMsgs())
	}
	if got := app.Periods(); !reflect.DeepEqual(got, []tm.Time{200}) {
		t.Errorf("Periods = %v", got)
	}
}
