// Package eval reproduces the experiments of the paper's evaluation
// section. Each runner sweeps the size of the current application over
// randomly generated test cases (existing workload of ~400 processes,
// 10-node TTP architecture) and aggregates per-strategy results:
//
//   - RunDeviation — the paper's first figure: average deviation of the
//     AH / MH objective from the near-optimal SA reference, per size.
//   - The same pass records execution times — the paper's second figure.
//   - RunFutureFit — the paper's third figure: percentage of concrete
//     future applications that can still be mapped after the current
//     application was placed by AH versus MH.
//   - RunAblation — extra (not in the paper): MH with its design choices
//     disabled one at a time.
//   - RunMulticluster — extra (beyond the paper): the deviation sweep
//     over multi-cluster platforms, 1–3 TDMA buses chained by gateways.
package eval

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/obs"
	"incdes/internal/textplot"
)

// Options configure an experiment sweep.
type Options struct {
	Config gen.Config
	// Sizes of the current application (processes). Default: the paper's
	// 40..320 sweep.
	Sizes []int
	// Existing is the size of the frozen workload (default 400).
	Existing int
	// Cases is the number of random test cases per point (default 3; the
	// paper used 50).
	Cases int
	// BaseSeed varies the whole experiment (default 1).
	BaseSeed int64
	// SA / MH tuning; zero values take the strategy defaults.
	SAOptions core.SAOptions
	MHOptions core.MHOptions
	// FutureProcs is the concrete future application size for
	// RunFutureFit (default 80, as in the paper).
	FutureProcs int
	// FutureSamples is how many future applications are tried per test
	// case in RunFutureFit (default 5).
	FutureSamples int
	// Progress, when non-nil, receives one line per completed test case.
	Progress io.Writer
	// Parallel is how many test cases run concurrently (default 1).
	// Values <= 0 use one worker per CPU. Use 1 when the measured
	// runtimes matter (the paper's second figure): concurrent cases
	// contend for cores and inflate wall-clock times.
	Parallel int
	// StrategyParallel is the evaluation parallelism handed to
	// core.Solve within each case (default 1 for the same reason as
	// Parallel; <= 0 uses one worker per CPU). Solutions are identical
	// at any setting — only runtimes change.
	StrategyParallel int
	// Incremental is handed to every embedded core.Solve call: the zero
	// value enables transactional incremental evaluation,
	// core.IncrementalOff restores full clone-and-rebuild per candidate.
	// Solutions (and therefore the figures) are identical either way.
	Incremental core.IncrementalMode
	// Observer, when non-nil, is handed to every embedded core.Solve
	// call, so one registry accumulates engine/scheduler/bus statistics
	// over the whole sweep (incbench -stats-out exports it). Attach a
	// Tracer only for single-case debugging: cases share the sink.
	Observer *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Config.Nodes == 0 {
		o.Config = gen.Default()
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{40, 80, 160, 240, 320}
	}
	if o.Existing == 0 {
		o.Existing = 400
	}
	if o.Cases == 0 {
		o.Cases = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.FutureProcs == 0 {
		o.FutureProcs = 80
	}
	if o.FutureSamples == 0 {
		o.FutureSamples = 5
	}
	if o.Parallel == 0 {
		o.Parallel = 1
	} else if o.Parallel < 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.StrategyParallel == 0 {
		o.StrategyParallel = 1
	} else if o.StrategyParallel < 0 {
		o.StrategyParallel = runtime.GOMAXPROCS(0)
	}
	// The runners predate the Solve redesign and still treat seed 0 as
	// "the default seed"; resolve it here so sweeps stay reproducible.
	if o.SAOptions.Seed == 0 {
		o.SAOptions.Seed = 1
	}
	return o
}

// forEachCase runs fn for every case index, o.Parallel at a time, and
// returns the first error. fn must be independent across cases (each
// case derives everything from its own seed), so the aggregate result is
// identical whatever the parallelism. Cancelling ctx stops new cases
// from starting.
func (o Options) forEachCase(ctx context.Context, fn func(c int) error) error {
	if o.Parallel <= 1 {
		for c := 0; c < o.Cases; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(c); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, o.Parallel)
	errs := make([]error, o.Cases)
	var wg sync.WaitGroup
	for c := 0; c < o.Cases; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[c] = err
				return
			}
			errs[c] = fn(c)
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// solve runs one strategy through core.Solve with the sweep's strategy
// parallelism. An interrupted (best-so-far) solution is reported as the
// context's error: a half-finished strategy run would corrupt the
// aggregate figures.
func (o Options) solve(ctx context.Context, p *core.Problem, strat core.Strategy) (*core.Solution, error) {
	sol, err := core.Solve(ctx, p, core.Options{
		Strategy:    strat,
		Parallelism: o.StrategyParallel,
		Incremental: o.Incremental,
		Observer:    o.Observer,
	})
	if err != nil {
		return nil, err
	}
	if sol.Interrupted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	return sol, nil
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// caseSeed spreads seeds so that every (size, case) pair generates an
// independent workload.
func (o Options) caseSeed(size, c int) int64 {
	return o.BaseSeed + int64(size)*101 + int64(c)*1_000_000_007
}

// DevRow aggregates one sweep point of the deviation/runtime experiment.
type DevRow struct {
	Size  int
	Cases int

	// Average objective value per strategy.
	AHObj, MHObj, SAObj float64
	// Average deviation from the SA reference in objective points. With
	// the normalized default weights the objective is a percentage-scaled
	// quantity, so this reads as the paper's "avg % deviation from
	// near-optimal" (computed as a difference, which stays defined when
	// the SA reference reaches 0).
	AHDev, MHDev, SADev float64
	// Average strategy runtimes (the paper's second figure).
	AHTime, MHTime, SATime time.Duration
	// Average design alternatives examined (hardware-independent cost).
	AHEvals, MHEvals, SAEvals float64
	// Average evaluations served from the memo. Informational (workers
	// race to fill entries), but stable enough to feed the bench report's
	// cache-hit rate.
	AHHits, MHHits, SAHits float64
}

// DeviationResult is the outcome of RunDeviation.
type DeviationResult struct {
	Rows []DevRow
}

// RunDeviation executes the paper's first and second experiments: for
// every current-application size it generates test cases, runs AH, MH and
// SA on each, and aggregates objective deviations and runtimes.
// Cancelling ctx aborts the sweep with the context's error.
func RunDeviation(ctx context.Context, o Options) (*DeviationResult, error) {
	o = o.withDefaults()
	res := &DeviationResult{}
	for _, size := range o.Sizes {
		row := DevRow{Size: size}
		type caseOut struct{ ah, mh, sa *core.Solution }
		outs := make([]caseOut, o.Cases)
		size := size
		err := o.forEachCase(ctx, func(c int) error {
			p, err := makeProblem(o, size, c)
			if err != nil {
				return err
			}
			ah, err := o.solve(ctx, p, core.AH)
			if err != nil {
				return fmt.Errorf("eval: AH on size %d case %d: %w", size, c, err)
			}
			mh, err := o.solve(ctx, p, core.MHWith(o.MHOptions))
			if err != nil {
				return fmt.Errorf("eval: MH on size %d case %d: %w", size, c, err)
			}
			sa, err := o.solve(ctx, p, core.SAWith(o.SAOptions))
			if err != nil {
				return fmt.Errorf("eval: SA on size %d case %d: %w", size, c, err)
			}
			outs[c] = caseOut{ah: ah, mh: mh, sa: sa}
			o.logf("size %d case %d: AH %.1f MH %.1f SA %.1f (MH %v, SA %v)",
				size, c, ah.Objective(), mh.Objective(), sa.Objective(),
				mh.Elapsed.Round(time.Millisecond), sa.Elapsed.Round(time.Millisecond))
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, out := range outs {
			ah, mh, sa := out.ah, out.mh, out.sa
			// SA starts from the IM solution, so it never ends worse than
			// AH; MH may in principle tie. The reference is the best of
			// the three, so deviations are non-negative.
			ref := min3(ah.Objective(), mh.Objective(), sa.Objective())
			row.Cases++
			row.AHObj += ah.Objective()
			row.MHObj += mh.Objective()
			row.SAObj += sa.Objective()
			row.AHDev += ah.Objective() - ref
			row.MHDev += mh.Objective() - ref
			row.SADev += sa.Objective() - ref
			row.AHTime += ah.Elapsed
			row.MHTime += mh.Elapsed
			row.SATime += sa.Elapsed
			row.AHEvals += float64(ah.Evaluations)
			row.MHEvals += float64(mh.Evaluations)
			row.SAEvals += float64(sa.Evaluations)
			row.AHHits += float64(ah.CacheHits)
			row.MHHits += float64(mh.CacheHits)
			row.SAHits += float64(sa.CacheHits)
		}
		n := float64(row.Cases)
		row.AHObj /= n
		row.MHObj /= n
		row.SAObj /= n
		row.AHDev /= n
		row.MHDev /= n
		row.SADev /= n
		row.AHTime = time.Duration(float64(row.AHTime) / n)
		row.MHTime = time.Duration(float64(row.MHTime) / n)
		row.SATime = time.Duration(float64(row.SATime) / n)
		row.AHEvals /= n
		row.MHEvals /= n
		row.SAEvals /= n
		row.AHHits /= n
		row.MHHits /= n
		row.SAHits /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func makeProblem(o Options, size, c int) (*core.Problem, error) {
	tc, err := gen.MakeTestCase(o.Config, o.caseSeed(size, c), o.Existing, size)
	if err != nil {
		return nil, fmt.Errorf("eval: generating size %d case %d: %w", size, c, err)
	}
	return core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
		metrics.DefaultWeights(tc.Profile))
}

// xLabels renders the sweep sizes for the plot routines.
func xLabels(rows []DevRow) []string {
	xs := make([]string, len(rows))
	for i, r := range rows {
		xs[i] = fmt.Sprint(r.Size)
	}
	return xs
}

// DeviationChart renders the first figure: average deviation from the
// near-optimal reference per strategy and size.
func (r *DeviationResult) DeviationChart() string {
	series := []textplot.Series{{Name: "AH"}, {Name: "MH"}, {Name: "SA"}}
	for _, row := range r.Rows {
		series[0].Values = append(series[0].Values, row.AHDev)
		series[1].Values = append(series[1].Values, row.MHDev)
		series[2].Values = append(series[2].Values, row.SADev)
	}
	return textplot.Chart(
		"Avg deviation from near-optimal [objective points] (paper Fig: deviation)",
		"current application processes", xLabels(r.Rows), series, "")
}

// RuntimeChart renders the second figure: average execution time per
// strategy and size.
func (r *DeviationResult) RuntimeChart() string {
	series := []textplot.Series{{Name: "AH"}, {Name: "MH"}, {Name: "SA"}}
	for _, row := range r.Rows {
		series[0].Values = append(series[0].Values, row.AHTime.Seconds()*1000)
		series[1].Values = append(series[1].Values, row.MHTime.Seconds()*1000)
		series[2].Values = append(series[2].Values, row.SATime.Seconds()*1000)
	}
	return textplot.Chart(
		"Avg execution time [ms] (paper Fig: runtime)",
		"current application processes", xLabels(r.Rows), series, "ms")
}

// Table renders the full numeric results.
func (r *DeviationResult) Table() string {
	series := []textplot.Series{
		{Name: "AH dev"}, {Name: "MH dev"}, {Name: "SA dev"},
		{Name: "AH ms"}, {Name: "MH ms"}, {Name: "SA ms"},
	}
	for _, row := range r.Rows {
		series[0].Values = append(series[0].Values, row.AHDev)
		series[1].Values = append(series[1].Values, row.MHDev)
		series[2].Values = append(series[2].Values, row.SADev)
		series[3].Values = append(series[3].Values, row.AHTime.Seconds()*1000)
		series[4].Values = append(series[4].Values, row.MHTime.Seconds()*1000)
		series[5].Values = append(series[5].Values, row.SATime.Seconds()*1000)
	}
	return textplot.Table("size", xLabels(r.Rows), series, "%.1f")
}
