package eval

import (
	"context"
	"fmt"
	"time"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/sched"
	"incdes/internal/textplot"
)

// MCRow aggregates one sweep point of the multi-cluster experiment. It
// embeds the same per-strategy aggregates as DevRow (Size carries the
// cluster count) plus the routing profile of the solved designs.
type MCRow struct {
	DevRow
	// Clusters is the platform's bus count at this point (same value as
	// Size; kept explicit so the table reads unambiguously).
	Clusters int
	// GatewayHops is the average number of gateway-forwarded MEDL
	// entries (hop > 0) in the MH design: how much of the traffic had to
	// cross cluster boundaries.
	GatewayHops float64
}

// MulticlusterResult is the outcome of RunMulticluster.
type MulticlusterResult struct {
	Rows []MCRow
}

// RunMulticluster generalizes the deviation sweep from the paper's
// single-bus platform to multi-cluster architectures: the swept axis is
// the number of TDMA buses (1, 2, 3 by default) at a fixed current-
// application size, with o.Config.Nodes nodes per cluster, one gateway
// per adjacent-bus link and 20% of the processes homed on a neighboring
// cluster. The 1-cluster point runs the exact single-bus generator, so
// the sweep doubles as a regression anchor for the classic family.
func RunMulticluster(ctx context.Context, o Options) (*MulticlusterResult, error) {
	o = o.withDefaults()
	clusters := []int{1, 2, 3}
	size := o.Sizes[0]
	res := &MulticlusterResult{}
	for _, k := range clusters {
		cfg := o.Config
		if k > 1 {
			cfg.Clusters = k
			cfg.GatewaysPerLink = 1
			cfg.InterClusterFrac = 0.2
		}
		row := MCRow{DevRow: DevRow{Size: k}, Clusters: k}
		type caseOut struct {
			ah, mh, sa *core.Solution
			hops       int
		}
		outs := make([]caseOut, o.Cases)
		k := k
		err := o.forEachCase(ctx, func(c int) error {
			tc, err := gen.MakeTestCase(cfg, o.caseSeed(1000+k, c), o.Existing, size)
			if err != nil {
				return fmt.Errorf("eval: generating %d-cluster case %d: %w", k, c, err)
			}
			p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
				metrics.DefaultWeights(tc.Profile))
			if err != nil {
				return err
			}
			ah, err := o.solve(ctx, p, core.AH)
			if err != nil {
				return fmt.Errorf("eval: AH on %d clusters case %d: %w", k, c, err)
			}
			mh, err := o.solve(ctx, p, core.MHWith(o.MHOptions))
			if err != nil {
				return fmt.Errorf("eval: MH on %d clusters case %d: %w", k, c, err)
			}
			sa, err := o.solve(ctx, p, core.SAWith(o.SAOptions))
			if err != nil {
				return fmt.Errorf("eval: SA on %d clusters case %d: %w", k, c, err)
			}
			hops := gatewayHopCount(mh.State)
			outs[c] = caseOut{ah: ah, mh: mh, sa: sa, hops: hops}
			o.logf("%d clusters case %d: AH %.1f MH %.1f SA %.1f (%d gateway hops)",
				k, c, ah.Objective(), mh.Objective(), sa.Objective(), hops)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, out := range outs {
			ah, mh, sa := out.ah, out.mh, out.sa
			ref := min3(ah.Objective(), mh.Objective(), sa.Objective())
			row.Cases++
			row.AHObj += ah.Objective()
			row.MHObj += mh.Objective()
			row.SAObj += sa.Objective()
			row.AHDev += ah.Objective() - ref
			row.MHDev += mh.Objective() - ref
			row.SADev += sa.Objective() - ref
			row.AHTime += ah.Elapsed
			row.MHTime += mh.Elapsed
			row.SATime += sa.Elapsed
			row.AHEvals += float64(ah.Evaluations)
			row.MHEvals += float64(mh.Evaluations)
			row.SAEvals += float64(sa.Evaluations)
			row.AHHits += float64(ah.CacheHits)
			row.MHHits += float64(mh.CacheHits)
			row.SAHits += float64(sa.CacheHits)
			row.GatewayHops += float64(out.hops)
		}
		n := float64(row.Cases)
		row.AHObj /= n
		row.MHObj /= n
		row.SAObj /= n
		row.AHDev /= n
		row.MHDev /= n
		row.SADev /= n
		row.AHTime = time.Duration(float64(row.AHTime) / n)
		row.MHTime = time.Duration(float64(row.MHTime) / n)
		row.SATime = time.Duration(float64(row.SATime) / n)
		row.AHEvals /= n
		row.MHEvals /= n
		row.SAEvals /= n
		row.AHHits /= n
		row.MHHits /= n
		row.SAHits /= n
		row.GatewayHops /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// gatewayHopCount counts the gateway-forwarded message entries (hop >
// 0) of a schedule: the share of the traffic that crossed a cluster
// boundary.
func gatewayHopCount(st *sched.State) int {
	hops := 0
	for _, e := range st.MsgEntries() {
		if e.Hop > 0 {
			hops++
		}
	}
	return hops
}

// DevRows adapts the sweep for the bench report (one point per cluster
// count and strategy, keyed by Size = clusters).
func (r *MulticlusterResult) DevRows() []DevRow {
	rows := make([]DevRow, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = row.DevRow
	}
	return rows
}

// Table renders the numeric results, one column per cluster count.
func (r *MulticlusterResult) Table() string {
	xs := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = fmt.Sprint(row.Clusters)
	}
	series := []textplot.Series{
		{Name: "AH dev"}, {Name: "MH dev"}, {Name: "SA dev"},
		{Name: "MH ms"}, {Name: "gw hops"},
	}
	for _, row := range r.Rows {
		series[0].Values = append(series[0].Values, row.AHDev)
		series[1].Values = append(series[1].Values, row.MHDev)
		series[2].Values = append(series[2].Values, row.SADev)
		series[3].Values = append(series[3].Values, row.MHTime.Seconds()*1000)
		series[4].Values = append(series[4].Values, row.GatewayHops)
	}
	return textplot.Table("clusters", xs, series, "%.1f")
}
