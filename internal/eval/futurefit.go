package eval

import (
	"context"
	"fmt"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/textplot"
)

// FitRow aggregates one sweep point of the future-fit experiment.
type FitRow struct {
	Size    int
	Cases   int
	Samples int // future applications tried per strategy
	// Percentage of future applications successfully mapped and
	// scheduled on the residual system.
	AHFit, MHFit float64
}

// FutureFitResult is the outcome of RunFutureFit.
type FutureFitResult struct {
	Rows []FitRow
}

// RunFutureFit executes the paper's third experiment: after the current
// application is placed by AH or by MH, sample concrete future
// applications (80 processes by default) and test whether the initial
// mapping algorithm can still place them on what is left of the system.
// Cancelling ctx aborts the sweep with the context's error.
func RunFutureFit(ctx context.Context, o Options) (*FutureFitResult, error) {
	o = o.withDefaults()
	res := &FutureFitResult{}
	for _, size := range o.Sizes {
		row := FitRow{Size: size, Samples: o.FutureSamples}
		type caseOut struct{ ahOK, mhOK, tried int }
		outs := make([]caseOut, o.Cases)
		size := size
		err := o.forEachCase(ctx, func(c int) error {
			tc, err := gen.MakeTestCase(o.Config, o.caseSeed(size, c), o.Existing, size)
			if err != nil {
				return fmt.Errorf("eval: generating size %d case %d: %w", size, c, err)
			}
			p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
				metrics.DefaultWeights(tc.Profile))
			if err != nil {
				return err
			}
			ah, err := o.solve(ctx, p, core.AH)
			if err != nil {
				return fmt.Errorf("eval: AH on size %d case %d: %w", size, c, err)
			}
			mh, err := o.solve(ctx, p, core.MHWith(o.MHOptions))
			if err != nil {
				return fmt.Errorf("eval: MH on size %d case %d: %w", size, c, err)
			}
			// Sample future applications from the same generator family,
			// with IDs displaced away from the test case's own objects.
			futGen := gen.New(o.Config, o.caseSeed(size, c)+77)
			futGen.StartIDsAt(1 << 20)
			for s := 0; s < o.FutureSamples; s++ {
				fut := futGen.FutureApp(fmt.Sprintf("future%d", s), tc.Profile, o.FutureProcs)
				if err := fut.Validate(tc.Sys.Arch); err != nil {
					return fmt.Errorf("eval: sampled future application invalid: %w", err)
				}
				outs[c].tried++
				if fits(ah.State, fut) {
					outs[c].ahOK++
				}
				if fits(mh.State, fut) {
					outs[c].mhOK++
				}
			}
			o.logf("size %d case %d: future fit AH %d/%d MH %d/%d",
				size, c, outs[c].ahOK, outs[c].tried, outs[c].mhOK, outs[c].tried)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var ahOK, mhOK, tried int
		for _, out := range outs {
			ahOK += out.ahOK
			mhOK += out.mhOK
			tried += out.tried
		}
		row.Cases = o.Cases
		if tried > 0 {
			row.AHFit = 100 * float64(ahOK) / float64(tried)
			row.MHFit = 100 * float64(mhOK) / float64(tried)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fits reports whether the future application can be mapped and scheduled
// on the residual slack of the solution state (requirement b, tested with
// a concrete family member): the initial mapping algorithm must find a
// valid design without touching anything already scheduled.
func fits(solution *sched.State, fut *model.Application) bool {
	st := solution.Clone()
	_, err := st.MapApp(fut, sched.Hints{})
	return err == nil
}

// FitChart renders the third figure: percentage of future applications
// mapped after AH versus MH placed the current application.
func (r *FutureFitResult) FitChart() string {
	series := []textplot.Series{{Name: "MH"}, {Name: "AH"}}
	for _, row := range r.Rows {
		series[0].Values = append(series[0].Values, row.MHFit)
		series[1].Values = append(series[1].Values, row.AHFit)
	}
	xs := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = fmt.Sprint(row.Size)
	}
	return textplot.Chart(
		"% of future applications mapped (paper Fig: future fit)",
		"current application processes", xs, series, "%")
}
