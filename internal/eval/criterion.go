package eval

import (
	"context"
	"fmt"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/sched"
	"incdes/internal/textplot"
)

// CriterionRow aggregates one objective variant of the criterion
// ablation: MH guided by both criteria, by criterion 1 only, or by
// criterion 2 only, all judged by the same future-fit test.
type CriterionRow struct {
	Variant string
	// Fit is the percentage of sampled future applications that still
	// map onto the resulting design.
	Fit float64
	// FullObjective scores the design under the complete objective
	// (regardless of which objective guided the search).
	FullObjective float64
}

// CriterionResult is the outcome of RunCriterionAblation.
type CriterionResult struct {
	Size  int
	Cases int
	Rows  []CriterionRow
}

// RunCriterionAblation quantifies what each of the paper's two design
// criteria contributes: the mapping heuristic runs with the full
// objective, with only the slack-clustering terms (C1), and with only the
// periodic-slack terms (C2); every variant's design is then judged by the
// full objective and by concrete future applications. The first entry of
// Options.Sizes selects the sweep point. Cancelling ctx aborts the sweep
// with the context's error.
func RunCriterionAblation(ctx context.Context, o Options) (*CriterionResult, error) {
	o = o.withDefaults()
	size := o.Sizes[0]
	res := &CriterionResult{Size: size, Cases: o.Cases}

	type variant struct {
		name    string
		weights func(full metrics.Weights) metrics.Weights
	}
	variants := []variant{
		{"C1+C2 (paper)", func(w metrics.Weights) metrics.Weights { return w }},
		{"C1 only", func(w metrics.Weights) metrics.Weights {
			w.W2P, w.W2m = 0, 0
			return w
		}},
		{"C2 only", func(w metrics.Weights) metrics.Weights {
			w.W1P, w.W1m = 0, 0
			return w
		}},
	}

	type caseOut struct {
		fit   []int // per variant
		tried int
		obj   []float64
	}
	outs := make([]caseOut, o.Cases)
	err := o.forEachCase(ctx, func(c int) error {
		outs[c].fit = make([]int, len(variants))
		outs[c].obj = make([]float64, len(variants))
		tc, err := gen.MakeTestCase(o.Config, o.caseSeed(size, c), o.Existing, size)
		if err != nil {
			return fmt.Errorf("eval: generating size %d case %d: %w", size, c, err)
		}
		full := metrics.DefaultWeights(tc.Profile)
		sols := make([]*core.Solution, len(variants))
		for i, v := range variants {
			p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile, v.weights(full))
			if err != nil {
				return err
			}
			sol, err := o.solve(ctx, p, core.MHWith(o.MHOptions))
			if err != nil {
				return fmt.Errorf("eval: %s on case %d: %w", v.name, c, err)
			}
			sols[i] = sol
			// Judge by the full objective whatever guided the search.
			outs[c].obj[i] = metrics.Evaluate(sol.State, tc.Profile, full).Objective
		}
		futGen := gen.New(o.Config, o.caseSeed(size, c)+377)
		futGen.StartIDsAt(1 << 20)
		for s := 0; s < o.FutureSamples; s++ {
			fut := futGen.FutureApp(fmt.Sprintf("future%d", s), tc.Profile, o.FutureProcs)
			outs[c].tried++
			for i, sol := range sols {
				st := sol.State.Clone()
				if _, err := st.MapApp(fut, sched.Hints{}); err == nil {
					outs[c].fit[i]++
				}
			}
		}
		o.logf("size %d case %d: criterion ablation done", size, c)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, v := range variants {
		row := CriterionRow{Variant: v.name}
		var fit, tried int
		for _, out := range outs {
			fit += out.fit[i]
			tried += out.tried
			row.FullObjective += out.obj[i]
		}
		if tried > 0 {
			row.Fit = 100 * float64(fit) / float64(tried)
		}
		row.FullObjective /= float64(o.Cases)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the criterion ablation.
func (r *CriterionResult) Table() string {
	xs := make([]string, len(r.Rows))
	fit := textplot.Series{Name: "future fit %"}
	obj := textplot.Series{Name: "full C"}
	for i, row := range r.Rows {
		xs[i] = row.Variant
		fit.Values = append(fit.Values, row.Fit)
		obj.Values = append(obj.Values, row.FullObjective)
	}
	return fmt.Sprintf("criterion ablation at current size %d (%d cases)\n%s",
		r.Size, r.Cases, textplot.Table("objective", xs, []textplot.Series{fit, obj}, "%.1f"))
}
