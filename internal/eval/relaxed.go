package eval

import (
	"context"
	"fmt"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/textplot"
)

// RelaxedRow aggregates one sweep point of the modification-cost
// experiment (the CODES-2001 extension): when the sampled future
// application finally arrives as the next increment, how much
// modification of already-shipped applications does it take to admit it —
// depending on whether the earlier increments were placed by AH or MH?
type RelaxedRow struct {
	Size  int
	Cases int
	// Average modification cost (in processes that had to be remapped)
	// per admitted future application; 0 means it fit the frozen design.
	AHCost, MHCost float64
	// Percentage of future applications inadmissible even with every
	// application modifiable.
	AHFail, MHFail float64
}

// RelaxedResult is the outcome of RunRelaxed.
type RelaxedResult struct {
	Rows []RelaxedRow
}

// RunRelaxed measures the engineering-change cost the two design
// histories incur when the future arrives: each sampled future
// application is admitted with core.SolveRelaxedContext, where modifying
// an existing application costs its size in processes. Cancelling ctx
// aborts the sweep with the context's error.
func RunRelaxed(ctx context.Context, o Options) (*RelaxedResult, error) {
	o = o.withDefaults()
	res := &RelaxedResult{}
	for _, size := range o.Sizes {
		row := RelaxedRow{Size: size, Cases: o.Cases}
		type caseOut struct {
			ahCost, mhCost float64
			ahFail, mhFail int
			tried          int
		}
		outs := make([]caseOut, o.Cases)
		size := size
		err := o.forEachCase(ctx, func(c int) error {
			tc, err := gen.MakeTestCase(o.Config, o.caseSeed(size, c), o.Existing, size)
			if err != nil {
				return fmt.Errorf("eval: generating size %d case %d: %w", size, c, err)
			}
			p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
				metrics.DefaultWeights(tc.Profile))
			if err != nil {
				return err
			}
			ah, err := o.solve(ctx, p, core.AH)
			if err != nil {
				return err
			}
			mh, err := o.solve(ctx, p, core.MHWith(o.MHOptions))
			if err != nil {
				return err
			}
			futGen := gen.New(o.Config, o.caseSeed(size, c)+177)
			futGen.StartIDsAt(1 << 20)
			for s := 0; s < o.FutureSamples; s++ {
				fut := futGen.FutureApp(fmt.Sprintf("future%d", s), tc.Profile, o.FutureProcs)
				outs[c].tried++
				for _, variant := range []struct {
					sol  *core.Solution
					cost *float64
					fail *int
				}{
					{ah, &outs[c].ahCost, &outs[c].ahFail},
					{mh, &outs[c].mhCost, &outs[c].mhFail},
				} {
					cost, ok := admissionCost(ctx, o, tc, variant.sol, fut)
					if err := ctx.Err(); err != nil {
						return err
					}
					if !ok {
						*variant.fail++
						continue
					}
					*variant.cost += cost
				}
			}
			o.logf("size %d case %d: relaxed AH cost %.0f fail %d | MH cost %.0f fail %d",
				size, c, outs[c].ahCost, outs[c].ahFail, outs[c].mhCost, outs[c].mhFail)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var tried, ahFail, mhFail int
		for _, out := range outs {
			tried += out.tried
			ahFail += out.ahFail
			mhFail += out.mhFail
			row.AHCost += out.ahCost
			row.MHCost += out.mhCost
		}
		if ok := tried - ahFail; ok > 0 {
			row.AHCost /= float64(ok)
		}
		if ok := tried - mhFail; ok > 0 {
			row.MHCost /= float64(ok)
		}
		if tried > 0 {
			row.AHFail = 100 * float64(ahFail) / float64(tried)
			row.MHFail = 100 * float64(mhFail) / float64(tried)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// admissionCost admits the future application on top of the given
// solution, allowing modification of every shipped application (cost =
// its process count), and returns the minimum modification cost found.
// ok is false when no subset admits it (or when ctx was cancelled; the
// caller distinguishes the two by checking ctx itself).
func admissionCost(ctx context.Context, o Options, tc *gen.TestCase, sol *core.Solution, fut *model.Application) (float64, bool) {
	apps := append(append([]*model.Application{}, tc.Existing...), tc.Current)
	sys := &model.System{Arch: tc.Sys.Arch, Apps: append(append([]*model.Application{}, apps...), fut)}
	existing := make([]core.ExistingApp, len(apps))
	for i, a := range apps {
		existing[i] = core.ExistingApp{App: a, Cost: float64(a.NumProcs())}
	}
	rp := &core.RelaxedProblem{
		Sys:      sys,
		Base:     sol.State,
		Existing: existing,
		Current:  fut,
		Profile:  tc.Profile,
		Weights:  metrics.DefaultWeights(tc.Profile),
	}
	rsol, err := core.SolveRelaxedContext(ctx, rp, core.RelaxedOptions{
		MH:          core.MHOptions{MaxIterations: 1},
		MaxSubsets:  16,
		Parallelism: o.StrategyParallel,
		Incremental: o.Incremental,
	})
	if err != nil {
		return 0, false
	}
	return rsol.Cost, true
}

// Table renders the modification-cost results.
func (r *RelaxedResult) Table() string {
	xs := make([]string, len(r.Rows))
	series := []textplot.Series{
		{Name: "AH mod cost"}, {Name: "MH mod cost"},
		{Name: "AH fail %"}, {Name: "MH fail %"},
	}
	for i, row := range r.Rows {
		xs[i] = fmt.Sprint(row.Size)
		series[0].Values = append(series[0].Values, row.AHCost)
		series[1].Values = append(series[1].Values, row.MHCost)
		series[2].Values = append(series[2].Values, row.AHFail)
		series[3].Values = append(series[3].Values, row.MHFail)
	}
	return textplot.Table("size", xs, series, "%.1f")
}
