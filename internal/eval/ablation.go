package eval

import (
	"context"
	"fmt"
	"time"

	"incdes/internal/core"
	"incdes/internal/textplot"
)

// AblationRow aggregates one MH variant over the test cases of one size.
type AblationRow struct {
	Variant string
	Obj     float64 // average objective
	Time    time.Duration
	Evals   float64
}

// AblationResult is the outcome of RunAblation.
type AblationResult struct {
	Size  int
	Cases int
	Rows  []AblationRow
}

// RunAblation quantifies MH's two design choices on one sweep size
// (the first entry of Options.Sizes): message moves, and potential-based
// candidate selection. Each variant runs on the same test cases.
// Cancelling ctx aborts the sweep with the context's error.
func RunAblation(ctx context.Context, o Options) (*AblationResult, error) {
	o = o.withDefaults()
	size := o.Sizes[0]
	variants := []struct {
		name string
		opts core.MHOptions
	}{
		{"MH (full)", o.MHOptions},
		{"MH -msg moves", withMsgMovesDisabled(o.MHOptions)},
		{"MH -potential", withRandomCandidates(o.MHOptions)},
	}
	res := &AblationResult{Size: size, Cases: o.Cases}
	sums := make([]AblationRow, len(variants))
	for i, v := range variants {
		sums[i].Variant = v.name
	}
	for c := 0; c < o.Cases; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := makeProblem(o, size, c)
		if err != nil {
			return nil, err
		}
		for i, v := range variants {
			sol, err := o.solve(ctx, p, core.MHWith(v.opts))
			if err != nil {
				return nil, fmt.Errorf("eval: %s on case %d: %w", v.name, c, err)
			}
			sums[i].Obj += sol.Objective()
			sums[i].Time += sol.Elapsed
			sums[i].Evals += float64(sol.Evaluations)
			o.logf("case %d %s: C=%.1f (%d evals)", c, v.name, sol.Objective(), sol.Evaluations)
		}
	}
	n := float64(o.Cases)
	for i := range sums {
		sums[i].Obj /= n
		sums[i].Time = time.Duration(float64(sums[i].Time) / n)
		sums[i].Evals /= n
	}
	res.Rows = sums
	return res, nil
}

func withMsgMovesDisabled(o core.MHOptions) core.MHOptions {
	o.DisableMsgMoves = true
	return o
}

func withRandomCandidates(o core.MHOptions) core.MHOptions {
	o.RandomCandidates = true
	return o
}

// Table renders the ablation results.
func (r *AblationResult) Table() string {
	xs := make([]string, len(r.Rows))
	obj := textplot.Series{Name: "avg C"}
	ms := textplot.Series{Name: "avg ms"}
	ev := textplot.Series{Name: "avg evals"}
	for i, row := range r.Rows {
		xs[i] = row.Variant
		obj.Values = append(obj.Values, row.Obj)
		ms.Values = append(ms.Values, row.Time.Seconds()*1000)
		ev.Values = append(ev.Values, row.Evals)
	}
	return fmt.Sprintf("MH ablation at current size %d (%d cases)\n%s",
		r.Size, r.Cases, textplot.Table("variant", xs, []textplot.Series{obj, ms, ev}, "%.1f"))
}
