package eval

import (
	"context"
	"strings"
	"testing"

	"incdes/internal/core"
	"incdes/internal/gen"
)

// smallOptions keeps experiment unit tests fast: a 5-node platform, a
// small existing workload, and a weak (but deterministic) SA.
func smallOptions() Options {
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 12
	return Options{
		Config:        cfg,
		Sizes:         []int{15, 30},
		Existing:      50,
		Cases:         2,
		BaseSeed:      7,
		SAOptions:     core.SAOptions{Iterations: 300},
		MHOptions:     core.MHOptions{MaxIterations: 10},
		FutureProcs:   20,
		FutureSamples: 3,
	}
}

func TestRunDeviation(t *testing.T) {
	res, err := RunDeviation(context.Background(), smallOptions())
	if err != nil {
		t.Fatalf("RunDeviation: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Cases != 2 {
			t.Errorf("size %d: %d cases, want 2", row.Size, row.Cases)
		}
		for name, dev := range map[string]float64{"AH": row.AHDev, "MH": row.MHDev, "SA": row.SADev} {
			if dev < 0 {
				t.Errorf("size %d: %s deviation %v is negative (reference must be the best solution)",
					row.Size, name, dev)
			}
		}
		if row.AHDev < row.MHDev-1e-9 {
			t.Errorf("size %d: AH deviation %v below MH %v — MH never does worse than its AH start",
				row.Size, row.AHDev, row.MHDev)
		}
		if row.AHTime > row.MHTime || row.MHEvals <= row.AHEvals {
			t.Errorf("size %d: cost ordering broken: AH %v/%v evals, MH %v/%v evals",
				row.Size, row.AHTime, row.AHEvals, row.MHTime, row.MHEvals)
		}
	}
}

func TestDeviationRendering(t *testing.T) {
	res := &DeviationResult{Rows: []DevRow{
		{Size: 40, Cases: 2, AHDev: 12.5, MHDev: 1.5, SADev: 0},
		{Size: 80, Cases: 2, AHDev: 25, MHDev: 3, SADev: 0.5},
	}}
	chart := res.DeviationChart()
	for _, want := range []string{"AH", "MH", "SA", "40", "80"} {
		if !strings.Contains(chart, want) {
			t.Errorf("DeviationChart missing %q:\n%s", want, chart)
		}
	}
	if rt := res.RuntimeChart(); !strings.Contains(rt, "ms") {
		t.Errorf("RuntimeChart missing unit:\n%s", rt)
	}
	if tab := res.Table(); !strings.Contains(tab, "AH dev") {
		t.Errorf("Table missing column:\n%s", tab)
	}
}

func TestRunFutureFit(t *testing.T) {
	o := smallOptions()
	o.Sizes = []int{20}
	res, err := RunFutureFit(context.Background(), o)
	if err != nil {
		t.Fatalf("RunFutureFit: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row.AHFit < 0 || row.AHFit > 100 || row.MHFit < 0 || row.MHFit > 100 {
		t.Errorf("fit percentages out of range: %+v", row)
	}
	chart := res.FitChart()
	if !strings.Contains(chart, "future applications") {
		t.Errorf("FitChart malformed:\n%s", chart)
	}
}

func TestRunAblation(t *testing.T) {
	o := smallOptions()
	o.Sizes = []int{25}
	res, err := RunAblation(context.Background(), o)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d variants, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Evals <= 0 {
			t.Errorf("variant %q ran no evaluations", row.Variant)
		}
	}
	if tab := res.Table(); !strings.Contains(tab, "MH (full)") {
		t.Errorf("ablation table malformed:\n%s", tab)
	}
}

func TestProgressLogging(t *testing.T) {
	var sb strings.Builder
	o := smallOptions()
	o.Sizes = []int{15}
	o.Cases = 1
	o.Progress = &sb
	if _, err := RunDeviation(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "size 15") {
		t.Errorf("progress log empty or malformed: %q", sb.String())
	}
}

func TestRunRelaxed(t *testing.T) {
	o := smallOptions()
	o.Sizes = []int{20}
	o.FutureSamples = 2
	o.FutureProcs = 15
	res, err := RunRelaxed(context.Background(), o)
	if err != nil {
		t.Fatalf("RunRelaxed: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row.AHCost < 0 || row.MHCost < 0 {
		t.Errorf("negative modification costs: %+v", row)
	}
	if row.AHFail < 0 || row.AHFail > 100 || row.MHFail < 0 || row.MHFail > 100 {
		t.Errorf("failure percentages out of range: %+v", row)
	}
	if tab := res.Table(); !strings.Contains(tab, "mod cost") {
		t.Errorf("relaxed table malformed:\n%s", tab)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	o := smallOptions()
	o.Sizes = []int{15}
	o.Cases = 3
	seq, err := RunDeviation(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = 3
	par, err := RunDeviation(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	// Objectives are deterministic per seed; only times may differ.
	if seq.Rows[0].AHObj != par.Rows[0].AHObj ||
		seq.Rows[0].MHObj != par.Rows[0].MHObj ||
		seq.Rows[0].SAObj != par.Rows[0].SAObj {
		t.Errorf("parallel run changed results: %+v vs %+v", seq.Rows[0], par.Rows[0])
	}
}

func TestRunCriterionAblation(t *testing.T) {
	o := smallOptions()
	o.Sizes = []int{25}
	o.FutureSamples = 2
	o.FutureProcs = 15
	res, err := RunCriterionAblation(context.Background(), o)
	if err != nil {
		t.Fatalf("RunCriterionAblation: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d variants, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Fit < 0 || row.Fit > 100 {
			t.Errorf("%s fit %v out of range", row.Variant, row.Fit)
		}
		if row.FullObjective < 0 {
			t.Errorf("%s objective %v negative", row.Variant, row.FullObjective)
		}
	}
	if tab := res.Table(); !strings.Contains(tab, "C1 only") {
		t.Errorf("criterion table malformed:\n%s", tab)
	}
}
