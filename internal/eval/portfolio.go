package eval

// RunPortfolio — extra (not in the paper): the strategy-portfolio racer
// against the individual strategies it races. Per test case the sweep
// solves AH, MH, SA and the portfolio on the same problem; the portfolio
// must finish with the best of the three objectives (its determinism
// contract), so the interesting numbers are which lane wins per size and
// what the race costs in wall-clock next to running only the eventual
// winner.

import (
	"context"
	"fmt"
	"time"

	"incdes/internal/core"
	"incdes/internal/textplot"
)

// PortfolioRow aggregates one sweep point of the portfolio experiment.
type PortfolioRow struct {
	Size  int
	Cases int

	// Average objectives: the portfolio and the best single strategy.
	PortObj, BestObj float64
	// Wins per lane (a case counts for the lane whose solution the
	// portfolio returned).
	AHWins, MHWins, SAWins int
	// Average wall-clock: the race versus the winning lane run alone.
	PortTime, BestTime time.Duration
}

// PortfolioResult is the outcome of RunPortfolio.
type PortfolioResult struct {
	Rows []PortfolioRow
}

// RunPortfolio sweeps the portfolio racer over the usual test cases.
// Cancelling ctx aborts the sweep with the context's error.
func RunPortfolio(ctx context.Context, o Options) (*PortfolioResult, error) {
	o = o.withDefaults()
	res := &PortfolioResult{}
	lanes := []core.Strategy{core.AH, core.MHWith(o.MHOptions), core.SAWith(o.SAOptions)}
	portfolio := core.PortfolioWith(core.PortfolioOptions{Lanes: lanes})
	for _, size := range o.Sizes {
		row := PortfolioRow{Size: size}
		type caseOut struct {
			port    *core.Solution
			singles [3]*core.Solution
		}
		outs := make([]caseOut, o.Cases)
		size := size
		err := o.forEachCase(ctx, func(c int) error {
			p, err := makeProblem(o, size, c)
			if err != nil {
				return err
			}
			var out caseOut
			out.port, err = o.solve(ctx, p, portfolio)
			if err != nil {
				return fmt.Errorf("eval: portfolio on size %d case %d: %w", size, c, err)
			}
			for i, lane := range lanes {
				out.singles[i], err = o.solve(ctx, p, lane)
				if err != nil {
					return fmt.Errorf("eval: %s on size %d case %d: %w", lane.Name(), size, c, err)
				}
			}
			outs[c] = out
			o.logf("size %d case %d: portfolio %.1f (%s) in %v",
				size, c, out.port.Objective(), out.port.Strategy,
				out.port.Elapsed.Round(time.Millisecond))
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, out := range outs {
			best := out.singles[0]
			for _, s := range out.singles[1:] {
				if s.Objective() < best.Objective() {
					best = s
				}
			}
			if out.port.Objective() > best.Objective() {
				return nil, fmt.Errorf("eval: portfolio objective %.6f worse than best single %.6f on size %d",
					out.port.Objective(), best.Objective(), size)
			}
			row.Cases++
			row.PortObj += out.port.Objective()
			row.BestObj += best.Objective()
			row.PortTime += out.port.Elapsed
			row.BestTime += best.Elapsed
			switch out.port.Strategy {
			case "AH":
				row.AHWins++
			case "SA":
				row.SAWins++
			default:
				row.MHWins++
			}
		}
		n := float64(row.Cases)
		row.PortObj /= n
		row.BestObj /= n
		row.PortTime = time.Duration(float64(row.PortTime) / n)
		row.BestTime = time.Duration(float64(row.BestTime) / n)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the numeric portfolio results.
func (r *PortfolioResult) Table() string {
	series := []textplot.Series{
		{Name: "port obj"}, {Name: "best obj"},
		{Name: "AH wins"}, {Name: "MH wins"}, {Name: "SA wins"},
		{Name: "port ms"}, {Name: "best ms"},
	}
	xs := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = fmt.Sprint(row.Size)
		series[0].Values = append(series[0].Values, row.PortObj)
		series[1].Values = append(series[1].Values, row.BestObj)
		series[2].Values = append(series[2].Values, float64(row.AHWins))
		series[3].Values = append(series[3].Values, float64(row.MHWins))
		series[4].Values = append(series[4].Values, float64(row.SAWins))
		series[5].Values = append(series[5].Values, row.PortTime.Seconds()*1000)
		series[6].Values = append(series[6].Values, row.BestTime.Seconds()*1000)
	}
	return textplot.Table("size", xs, series, "%.1f")
}
