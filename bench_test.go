// Benchmarks regenerating the paper's evaluation figures.
//
// The paper's evaluation has three figures; each maps to a benchmark
// family here (plus ablations and micro-benchmarks of the substrates):
//
//	Fig "deviation" (E1): BenchmarkFigDeviation/* — one op runs AH, MH
//	    and SA on one generated test case and reports the deviation of
//	    AH and MH from the best solution in objective points.
//	Fig "runtime" (E2): BenchmarkStrategy{AH,MH,SA}/* — ns/op per sweep
//	    size IS the figure (the paper's y-axis, on today's hardware).
//	Fig "future fit" (E3): BenchmarkFigFutureFit/* — one op places the
//	    current application with AH and MH and tries future samples on
//	    both; reported metrics are the fit percentages.
//	Ablations: BenchmarkMHAblation/* — MH with message moves or
//	    potential-based candidate selection disabled.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// SA uses its full default iteration budget only in BenchmarkStrategySA;
// the composite figures use a reduced budget so a complete -bench=. run
// finishes in minutes. cmd/incbench runs the full-strength sweeps.
package incdes_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// benchSizes is the paper's sweep of current-application sizes.
var benchSizes = []int{40, 80, 160, 240, 320}

// benchExisting matches the paper: 400 processes of frozen applications.
const benchExisting = 400

var (
	problemCache   = map[int]*core.Problem{}
	problemCacheMu sync.Mutex
)

// benchProblem returns (building once) a full-scale problem instance for
// the given current-application size.
func benchProblem(b *testing.B, size int) *core.Problem {
	b.Helper()
	problemCacheMu.Lock()
	defer problemCacheMu.Unlock()
	if p, ok := problemCache[size]; ok {
		return p
	}
	tc, err := gen.MakeTestCase(gen.Default(), 42+int64(size), benchExisting, size)
	if err != nil {
		b.Fatalf("generating test case: %v", err)
	}
	p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
		metrics.DefaultWeights(tc.Profile))
	if err != nil {
		b.Fatal(err)
	}
	problemCache[size] = p
	return p
}

// reducedSA keeps composite benchmarks bounded; BenchmarkStrategySA runs
// the full default budget.
var reducedSA = core.SAOptions{Seed: 1, Iterations: 3000, Restarts: 1}

// BenchmarkFigDeviation regenerates the paper's first figure: per sweep
// size, one op solves one test case with all three strategies and reports
// AH's and MH's deviation from the best objective.
func BenchmarkFigDeviation(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			var ahDev, mhDev float64
			for i := 0; i < b.N; i++ {
				ah, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				mh, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				sa, err := core.Solve(context.Background(), p, core.Options{Strategy: core.SAWith(reducedSA), Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				ref := sa.Objective()
				if mh.Objective() < ref {
					ref = mh.Objective()
				}
				ahDev += ah.Objective() - ref
				mhDev += mh.Objective() - ref
			}
			b.ReportMetric(ahDev/float64(b.N), "AH-dev")
			b.ReportMetric(mhDev/float64(b.N), "MH-dev")
		})
	}
}

// BenchmarkStrategyAH regenerates the AH series of the paper's second
// figure: ns/op is the strategy runtime per sweep size.
func BenchmarkStrategyAH(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrategyMH regenerates the MH series of the second figure.
func BenchmarkStrategyMH(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrategySA regenerates the SA series of the second figure with
// the full default annealing budget (the near-optimal configuration).
// This is by far the slowest benchmark, as it was in the paper.
func BenchmarkStrategySA(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, core.Options{Strategy: core.SAWith(core.SAOptions{Seed: 1}), Parallelism: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigFutureFit regenerates the paper's third figure: one op maps
// the current application with AH and MH and tries future applications of
// 80 processes on both residual systems; the reported metrics are the
// percentage that fit.
func BenchmarkFigFutureFit(b *testing.B) {
	const futureProcs = 80
	const samples = 3
	for _, size := range []int{40, 80, 160, 240} {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			ah, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			mh, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			var ahFit, mhFit, tried float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				futGen := gen.New(gen.Default(), int64(1000+i))
				futGen.StartIDsAt(1 << 20)
				for s := 0; s < samples; s++ {
					fut := futGen.FutureApp("future", p.Profile, futureProcs)
					tried++
					if _, err := ah.State.Clone().MapApp(fut, sched.Hints{}); err == nil {
						ahFit++
					}
					if _, err := mh.State.Clone().MapApp(fut, sched.Hints{}); err == nil {
						mhFit++
					}
				}
			}
			b.ReportMetric(100*ahFit/tried, "AH-fit%")
			b.ReportMetric(100*mhFit/tried, "MH-fit%")
		})
	}
}

// BenchmarkMHAblation quantifies MH's design choices at one sweep size.
func BenchmarkMHAblation(b *testing.B) {
	variants := []struct {
		name string
		opts core.MHOptions
	}{
		{"full", core.MHOptions{}},
		{"no-msg-moves", core.MHOptions{DisableMsgMoves: true}},
		{"no-potential", core.MHOptions{RandomCandidates: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			p := benchProblem(b, 160)
			var obj float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MHWith(v.opts), Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				obj += sol.Objective()
			}
			b.ReportMetric(obj/float64(b.N), "C")
		})
	}
}

// BenchmarkSolveMHParallel measures the parallel engine's MH speedup on
// the 160-process sweep point: the same strategy at 1, 2 and 4
// evaluation workers. The solution is byte-identical at every setting
// (the determinism tests pin that); only ns/op should fall with workers —
// on a multi-core machine. Compare sub-benchmarks against parallel=1.
func BenchmarkSolveMHParallel(b *testing.B) {
	p := benchProblem(b, 160)
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opts := core.Options{Strategy: core.MH, Parallelism: par}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// incrementalModes pairs the two candidate-evaluation paths for the
// Solve benchmarks: the transactional incremental path (the default) and
// the clone-and-rebuild path it replaced. Identical solutions (pinned by
// TestIncrementalEquivalence); the sub-benchmark gap is the refactor's
// payoff in ns/op and — with -benchmem — allocations per solve, which on
// the memo-miss path is dominated by the per-candidate evaluation cost.
var incrementalModes = []struct {
	name string
	mode core.IncrementalMode
}{
	{"incremental", core.IncrementalOn},
	{"full", core.IncrementalOff},
}

// BenchmarkSolveMH is one MH solve on the 160-process sweep point with
// no observer attached, once per evaluation path. The incremental/full
// pair measures the transactional engine; the incremental sub-benchmark
// doubles as the plain-Solve baseline for BenchmarkSolveMHObserved — the
// gap to that is the full cost of the observability layer, which must
// stay in the noise (the disabled-observer hot path is additionally
// pinned to zero allocations by a test in internal/core).
func BenchmarkSolveMH(b *testing.B) {
	p := benchProblem(b, 160)
	for _, m := range incrementalModes {
		b.Run(m.name, func(b *testing.B) {
			opts := core.Options{Strategy: core.MH, Parallelism: 1, Incremental: m.mode}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveSA is the SA analogue of BenchmarkSolveMH: one
// reduced-budget annealing solve per op, on both evaluation paths. SA
// examines far more candidates per solve than MH, so the per-candidate
// allocation difference between the paths shows up here most clearly.
func BenchmarkSolveSA(b *testing.B) {
	p := benchProblem(b, 160)
	strat := core.SAWith(core.SAOptions{Seed: 1, Iterations: 1500})
	for _, m := range incrementalModes {
		b.Run(m.name, func(b *testing.B) {
			opts := core.Options{Strategy: strat, Parallelism: 1, Incremental: m.mode}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveMHObserved is the same solve with the full observability
// layer on: a stats registry collecting every counter/timer/gauge and a
// JSONL tracer streaming events into a discarded writer.
func BenchmarkSolveMHObserved(b *testing.B) {
	p := benchProblem(b, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.Options{
			Strategy:    core.MH,
			Parallelism: 1,
			Observer: &obs.Observer{
				Stats:  obs.NewRegistry(),
				Tracer: obs.NewJSONLWriter(io.Discard),
			},
		}
		if _, err := core.Solve(context.Background(), p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSAParallel measures the parallel engine's SA speedup on
// the 160-process sweep point: 4 restart chains at 1, 2 and 4 workers.
// Chain iterations are reduced so a full -bench=. run stays bounded; the
// chains are embarrassingly parallel, so the speedup is near-linear on a
// multi-core machine.
func BenchmarkSolveSAParallel(b *testing.B) {
	p := benchProblem(b, 160)
	strat := core.SAWith(core.SAOptions{Seed: 1, Iterations: 1500, Restarts: 4})
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			opts := core.Options{Strategy: strat, Parallelism: par}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleApp measures the substrate cost every strategy pays
// per examined design alternative: clone the frozen base and statically
// schedule the current application onto it.
func BenchmarkScheduleApp(b *testing.B) {
	for _, size := range []int{40, 160, 320} {
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			p := benchProblem(b, size)
			sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := p.Base.Clone()
				if err := st.ScheduleApp(p.Current, sol.Mapping, sched.Hints{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluate measures one metric evaluation (criteria C1 and C2)
// on a full design.
func BenchmarkEvaluate(b *testing.B) {
	p := benchProblem(b, 160)
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Evaluate(sol.State, p.Profile, p.Weights)
	}
}

// BenchmarkStateClone measures the copy cost of a full-scale schedule
// state, the unit of work behind every what-if evaluation.
func BenchmarkStateClone(b *testing.B) {
	p := benchProblem(b, 320)
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.AH, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sol.State.Clone()
	}
}
