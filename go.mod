module incdes

go 1.22
