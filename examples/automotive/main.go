// Automotive: the scenario the paper's introduction motivates. A vehicle
// ECU network (5 nodes on a TTP bus) already runs engine management and
// an anti-lock braking application, both frozen since the last product
// version. The current increment adds adaptive cruise control. Marketing
// expects a lane-keeping assistant in the next version — known today only
// as a family characterization (Tmin, tneed, bneed, size histograms).
//
// The example maps the cruise-control application twice — once with the
// performance-only ad-hoc strategy, once with the paper's mapping
// heuristic — and then checks which design still accommodates the
// lane-keeping application when it finally arrives.
//
// Run with: go run ./examples/automotive
package main

import (
	"context"
	"fmt"
	"log"

	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/textplot"
	"incdes/internal/tm"
)

const period = 1600 // base period of all control loops, in time units

// buildSystem assembles the ECU network and the three applications.
func buildSystem() (*model.System, []*model.Application, *model.Application, *model.Application) {
	b := model.NewBuilder()
	ecu := make([]model.NodeID, 5)
	names := []string{"engine", "brake-fl", "brake-rr", "body", "sensor"}
	for i, n := range names {
		ecu[i] = b.Node(n)
	}
	b.UniformBus(16, 1, 4) // 16-byte slots, 20 tu each, 100 tu round

	// Existing application 1: engine management — a sensing/actuation
	// pipeline pinned mostly to the engine ECU.
	eng := b.App("engine-management")
	g := eng.Graph("injection", period, period)
	sense := g.Proc("crank-sense", map[model.NodeID]tm.Time{ecu[0]: 60, ecu[4]: 80})
	mix := g.Proc("mixture", map[model.NodeID]tm.Time{ecu[0]: 120})
	inject := g.Proc("injectors", map[model.NodeID]tm.Time{ecu[0]: 90})
	diag := g.Proc("diagnostics", map[model.NodeID]tm.Time{ecu[0]: 70, ecu[3]: 60})
	g.Msg(sense, mix, 4)
	g.Msg(mix, inject, 4)
	g.Msg(mix, diag, 2)

	// Existing application 2: anti-lock braking across the wheel ECUs.
	abs := b.App("abs")
	g2 := abs.Graph("abs-loop", period/2, period/2)
	wheel1 := g2.Proc("wheel-speed-fl", map[model.NodeID]tm.Time{ecu[1]: 50})
	wheel2 := g2.Proc("wheel-speed-rr", map[model.NodeID]tm.Time{ecu[2]: 50})
	ctrl := g2.Proc("slip-control", map[model.NodeID]tm.Time{ecu[1]: 110, ecu[2]: 110, ecu[3]: 100})
	act1 := g2.Proc("valve-fl", map[model.NodeID]tm.Time{ecu[1]: 40})
	act2 := g2.Proc("valve-rr", map[model.NodeID]tm.Time{ecu[2]: 40})
	g2.Msg(wheel1, ctrl, 4)
	g2.Msg(wheel2, ctrl, 4)
	g2.Msg(ctrl, act1, 2)
	g2.Msg(ctrl, act2, 2)

	// Current application: adaptive cruise control — radar tracking,
	// target selection, distance control, torque request.
	acc := b.App("adaptive-cruise")
	g3 := acc.Graph("acc-loop", period, period)
	radar := g3.Proc("radar", map[model.NodeID]tm.Time{ecu[4]: 150})
	track := g3.Proc("tracking", map[model.NodeID]tm.Time{ecu[3]: 200, ecu[4]: 180})
	sel := g3.Proc("target-select", map[model.NodeID]tm.Time{ecu[3]: 90, ecu[4]: 110})
	dist := g3.Proc("distance-ctrl", map[model.NodeID]tm.Time{ecu[0]: 120, ecu[3]: 110})
	torque := g3.Proc("torque-req", map[model.NodeID]tm.Time{ecu[0]: 60})
	hmi := g3.Proc("driver-display", map[model.NodeID]tm.Time{ecu[3]: 80})
	g3.Msg(radar, track, 8)
	g3.Msg(track, sel, 6)
	g3.Msg(sel, dist, 4)
	g3.Msg(dist, torque, 2)
	g3.Msg(sel, hmi, 2)

	sys, err := b.System()
	if err != nil {
		log.Fatal(err)
	}
	existing := []*model.Application{eng.Application(), abs.Application()}
	return sys, existing, acc.Application(), nil
}

// laneKeeping is the future application once it becomes concrete: camera
// processing and steering control at the fast Tmin rate.
func laneKeeping(sys *model.System) *model.Application {
	var ecu []model.NodeID
	for _, n := range sys.Arch.Nodes {
		ecu = append(ecu, n.ID)
	}
	g := &model.Graph{ID: 900, Name: "lane-keep", Period: period / 4, Deadline: period / 4}
	add := func(id model.ProcID, name string, wcet map[model.NodeID]tm.Time) model.ProcID {
		g.Procs = append(g.Procs, &model.Process{ID: id, Name: name, WCET: wcet})
		return id
	}
	cam := add(901, "camera", map[model.NodeID]tm.Time{ecu[4]: 90, ecu[3]: 100})
	lane := add(902, "lane-detect", map[model.NodeID]tm.Time{ecu[3]: 100, ecu[4]: 110})
	steer := add(903, "steer-ctrl", map[model.NodeID]tm.Time{ecu[1]: 60, ecu[2]: 60, ecu[3]: 70})
	g.Msgs = []*model.Message{
		{ID: 910, Src: cam, Dst: lane, Bytes: 8},
		{ID: 911, Src: lane, Dst: steer, Bytes: 4},
	}
	return &model.Application{ID: 90, Name: "lane-keeping", Graphs: []*model.Graph{g}}
}

func main() {
	sys, existing, acc, _ := buildSystem()

	// Freeze the existing applications (they shipped in version N-1).
	base, err := sched.NewState(sys)
	if err != nil {
		log.Fatal(err)
	}
	for _, app := range existing {
		if _, err := base.MapApp(app, sched.Hints{}); err != nil {
			log.Fatalf("existing application %q: %v", app.Name, err)
		}
	}

	// The lane-keeping assistant is only a characterization today: it
	// will run every 400 tu and need ~260 tu of processor time and 12
	// bytes of bus capacity inside each such period.
	prof := &future.Profile{
		Tmin: period / 4, TNeed: 260, BNeedBytes: 12,
		WCET:     []future.Bin{{Size: 60, Prob: 0.3}, {Size: 90, Prob: 0.4}, {Size: 110, Prob: 0.3}},
		MsgBytes: []future.Bin{{Size: 4, Prob: 0.6}, {Size: 8, Prob: 0.4}},
	}

	problem, err := core.NewProblem(sys, base, acc, prof, metrics.DefaultWeights(prof))
	if err != nil {
		log.Fatal(err)
	}

	ah, err := core.Solve(context.Background(), problem, core.Options{Strategy: core.AH})
	if err != nil {
		log.Fatal(err)
	}
	mh, err := core.Solve(context.Background(), problem, core.Options{Strategy: core.MH})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("adaptive cruise control mapped on the residual system:")
	fmt.Printf("  AH (performance only):   %v\n", ah.Report)
	fmt.Printf("  MH (incremental design): %v\n", mh.Report)

	fmt.Println("\nAH design (A=engine, B=abs, C=cruise):")
	fmt.Print(textplot.Gantt(ah.State, 72))
	fmt.Println("\nMH design:")
	fmt.Print(textplot.Gantt(mh.State, 72))

	// Version N+1 arrives: try to add lane keeping to both designs.
	fut := laneKeeping(sys)
	if err := fut.Validate(sys.Arch); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nversion N+1: adding the lane-keeping assistant")
	for _, sol := range []*core.Solution{ah, mh} {
		st := sol.State.Clone()
		if _, err := st.MapApp(fut, sched.Hints{}); err != nil {
			fmt.Printf("  after %s: DOES NOT FIT (%v)\n", sol.Strategy, err)
		} else {
			fmt.Printf("  after %s: fits — all deadlines met\n", sol.Strategy)
		}
	}
}
