// Incremental: a product line evolving over four versions. Each version
// adds one application to the same 6-node TTP platform; once shipped, an
// application is frozen (remapping it would re-trigger validation of
// already-certified functions).
//
// Two design histories are simulated side by side:
//
//   - one where every increment is placed by the ad-hoc strategy (AH),
//     which optimizes nothing but the new application's finish times;
//   - one where every increment is placed by the paper's mapping
//     heuristic (MH), which also keeps slack large and periodically
//     distributed for whatever comes next.
//
// The histories diverge: by the time version 4 arrives, only one of them
// still has room for it.
//
// Run with: go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
)

func main() {
	cfg := gen.Default()
	cfg.Nodes = 6
	cfg.GraphMinProcs = 8
	cfg.GraphMaxProcs = 16
	cfg.TargetUtil = 0.72 // the platform fills up over the versions

	// Generate the four increments as one workload so every graph gets a
	// consistent period; then replay them version by version.
	g := gen.New(cfg, 2026)
	var apps []*model.Application
	var levels [][]int
	sizes := []int{60, 50, 50, 45}
	for i, n := range sizes {
		app, lv := g.Application(fmt.Sprintf("v%d", i+1), n)
		apps = append(apps, app)
		levels = append(levels, lv)
	}
	base := g.AssignPeriods(apps, levels)
	sys := &model.System{Arch: g.Architecture(), Apps: apps}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	prof := g.Profile(base)
	weights := metrics.DefaultWeights(prof)
	fmt.Printf("platform: %d nodes, base period %v, future profile Tmin=%v tneed=%v\n\n",
		cfg.Nodes, base, prof.Tmin, prof.TNeed)

	type track struct {
		name  string
		state *sched.State
		place func(p *core.Problem) (*core.Solution, error)
		dead  bool
	}
	mkState := func() *sched.State {
		st, err := sched.NewState(sys)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	tracks := []*track{
		{name: "AH", state: mkState(), place: func(p *core.Problem) (*core.Solution, error) {
			return core.Solve(context.Background(), p, core.Options{Strategy: core.AH})
		}},
		{name: "MH", state: mkState(), place: func(p *core.Problem) (*core.Solution, error) {
			return core.Solve(context.Background(), p, core.Options{Strategy: core.MH})
		}},
	}

	for v, app := range apps {
		fmt.Printf("version %d: adding %q (%d processes)\n", v+1, app.Name, app.NumProcs())
		for _, tr := range tracks {
			if tr.dead {
				continue
			}
			p, err := core.NewProblem(sys, tr.state, app, prof, weights)
			if err != nil {
				log.Fatal(err)
			}
			sol, err := tr.place(p)
			if err != nil {
				fmt.Printf("  %s history: %q DOES NOT FIT — redesign of shipped applications required\n",
					tr.name, app.Name)
				tr.dead = true
				continue
			}
			tr.state = sol.State
			fmt.Printf("  %s history: placed, %v\n", tr.name, sol.Report)
		}
		fmt.Println()
	}

	// Version 5 is the future application the profile anticipated: a
	// fast sensing/actuation function running at the Tmin rate.
	futGen := gen.New(cfg, 77)
	futGen.StartIDsAt(1 << 20)
	fast := futGen.FutureApp("v5-fast-loop", prof, 20)
	fmt.Printf("version 5: adding %q (%d processes, fastest period %v)\n",
		fast.Name, fast.NumProcs(), prof.Tmin)
	for _, tr := range tracks {
		if tr.dead {
			continue
		}
		st := tr.state.Clone()
		if _, err := st.MapApp(fast, sched.Hints{}); err != nil {
			fmt.Printf("  %s history: DOES NOT FIT (%v)\n", tr.name, err)
			tr.dead = true
			continue
		}
		tr.state = st
		fmt.Printf("  %s history: placed\n", tr.name)
	}

	fmt.Println("\nsummary:")
	for _, tr := range tracks {
		if tr.dead {
			fmt.Printf("  %s: design process broke down — an increment could not be added\n", tr.name)
		} else {
			rep := metrics.Evaluate(tr.state, prof, weights)
			fmt.Printf("  %s: all versions shipped; final design %v\n", tr.name, rep)
		}
	}
}
