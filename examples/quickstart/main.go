// Quickstart: the paper's "classic mapping and scheduling" example.
//
// Two nodes hang off a TTP bus whose round is (S1, S0) — node 1 owns the
// first slot, node 0 the second. A diamond-shaped process graph
// P1 -> {P2, P3} -> P4 with messages m1..m4 is mapped and statically
// scheduled; messages between processes on different nodes ride in the
// sender node's TDMA slot.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/textplot"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

func main() {
	// Architecture: two nodes; TDMA slot order (S1, S0), 8-byte slots,
	// 2 tu per byte, 2 tu frame overhead -> 18 tu slots, 36 tu round.
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n1, n0}, []int{8, 8}, 2, 2)

	// One application: the diamond graph, period and deadline 360 tu.
	app := b.App("diamond")
	g := app.Graph("G1", 360, 360)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 20, n1: 30})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n0: 40, n1: 30})
	p3 := g.Proc("P3", map[model.NodeID]tm.Time{n0: 30, n1: 25})
	p4 := g.Proc("P4", map[model.NodeID]tm.Time{n0: 20, n1: 20})
	g.Msg(p1, p2, 4) // m1
	g.Msg(p1, p3, 4) // m2
	g.Msg(p2, p4, 4) // m3
	g.Msg(p3, p4, 4) // m4

	sys, err := b.System()
	if err != nil {
		log.Fatal(err)
	}

	// Nothing exists yet: the base schedule is empty.
	base, err := sched.NewState(sys)
	if err != nil {
		log.Fatal(err)
	}

	// Future applications: small fast functions, characterized per the
	// paper — smallest period 90 tu, 20 tu of processor time and 8 bytes
	// of bus capacity needed inside every such period.
	prof := future.PaperProfile(90, 20, 8)
	prof.WCET = []future.Bin{{Size: 10, Prob: 0.5}, {Size: 20, Prob: 0.5}}

	problem, err := core.NewProblem(sys, base, app.Application(), prof, metrics.DefaultWeights(prof))
	if err != nil {
		log.Fatal(err)
	}

	sol, err := core.Solve(context.Background(), problem, core.Options{Strategy: core.MH})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mapping (process -> node):")
	for _, p := range []model.ProcID{p1, p2, p3, p4} {
		fmt.Printf("  P%d -> N%d\n", p+1, sol.Mapping[p])
	}
	fmt.Println("\nschedule:")
	for _, e := range sol.State.ProcEntries() {
		fmt.Printf("  P%d occ %d on N%d: [%v, %v)\n", e.Proc+1, e.Occ, e.Node, e.Start, e.End)
	}
	for _, m := range sol.State.MsgEntries() {
		fmt.Printf("  m%d occ %d: slot %d round %d, arrives %v\n", m.Msg+1, m.Occ, m.Slot, m.Round, m.Arrive)
	}

	fmt.Println("\nGantt (A = diamond application):")
	fmt.Print(textplot.Gantt(sol.State, 72))

	fmt.Printf("\ndesign metrics: %v\n", sol.Report)

	// Export the bus side of the design as a TTP message descriptor list.
	var placements []ttp.Placement
	for _, e := range sol.State.MsgEntries() {
		placements = append(placements, ttp.Placement{
			Msg: e.Msg, Occ: e.Occ, Round: e.Round, Slot: e.Slot, Bytes: e.Bytes,
		})
	}
	medl, err := ttp.BuildMEDL(sys.Arch.Buses[0], placements)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMEDL:")
	for _, e := range medl {
		fmt.Printf("  round %2d slot %d offset %dB: m%d (%dB), on air [%v, %v)\n",
			e.Round, e.Slot, e.Offset, e.Msg+1, e.Bytes, e.Start, e.End)
	}
}
